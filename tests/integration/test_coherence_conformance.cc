/**
 * @file
 * Coherence-backend conformance: the recorder's correctness must not
 * depend on which coherence protocol feeds it snoops. Every kernel is
 * recorded under the snoopy ring and under the home-directory backend,
 * with Base and Opt policies, and each recording must replay
 * bit-identically on the sequential *and* the multi-threaded engine:
 * same final memory, instruction counts, per-core load-value hashes
 * and architectural registers as the recording. The directory routes
 * far fewer snoops than the ring broadcasts (that is its point), so
 * this suite is what catches any recorder assumption that only held
 * because snoopy traffic was dense — e.g. the same-core same-line
 * ordering hazard guarded in MrrHub::drainCountable.
 *
 * Also covers the `.rrlog` coherence tag: the header flag mirrors the
 * meta chunk, the two backends hash to different configuration
 * fingerprints (so a wrong-machine reader refuses cleanly), and a
 * file whose flag and meta disagree is rejected.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "rnr/logstore.hh"
#include "rnr/parallel_replayer.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

struct ConformanceRun
{
    workloads::Workload workload;
    mem::BackingStore initial;
    machine::RecordingResult rec;
};

ConformanceRun
record(const std::string &kernel, std::uint32_t cores,
       sim::CoherenceKind coherence,
       const std::vector<sim::RecorderConfig> &policies,
       std::uint64_t scale = 1)
{
    workloads::WorkloadParams wp;
    wp.numThreads = cores;
    wp.scale = scale;
    ConformanceRun run;
    run.workload = workloads::buildKernel(kernel, wp);

    sim::MachineConfig cfg;
    cfg.numCores = cores;
    cfg.coherence = coherence;
    machine::Machine m(cfg, run.workload.program, policies);
    run.initial = m.initialMemory();
    run.rec = m.run(2'000'000'000ULL);
    return run;
}

void
verifyPolicy(const ConformanceRun &run, std::size_t pol,
             std::uint32_t workers)
{
    const std::size_t cores = run.rec.cores.size();
    std::vector<rnr::CoreLog> patched;
    for (const auto &log : run.rec.logs[pol])
        patched.push_back(rnr::patch(log));

    // Sequential engine.
    {
        rnr::Replayer rep(run.workload.program, patched,
                          run.initial.clone());
        std::vector<std::uint64_t> hashes(cores, 0);
        rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
            hashes[c] = machine::mixLoadValue(hashes[c], v);
        });
        const auto res = rep.run();
        EXPECT_EQ(res.memory.fingerprint(), run.rec.memoryFingerprint);
        EXPECT_EQ(res.instructions, run.rec.totalInstructions);
        for (std::size_t c = 0; c < cores; ++c) {
            EXPECT_EQ(hashes[c], run.rec.cores[c].loadValueHash)
                << "seq core " << c;
            for (int r = 0; r < 32; ++r) {
                EXPECT_EQ(res.contexts[c].regs[r],
                          run.rec.cores[c].finalRegs[r])
                    << "seq core " << c << " r" << r;
            }
        }
    }

    // Multi-threaded engine (requires recorded dependency edges).
    {
        rnr::ParallelReplayOptions opts;
        opts.workers = workers;
        rnr::ParallelReplayer rep(run.workload.program, patched,
                                  run.initial.clone(), opts);
        std::vector<std::uint64_t> hashes(cores, 0);
        rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
            hashes[c] = machine::mixLoadValue(hashes[c], v);
        });
        const auto res = rep.run();
        EXPECT_EQ(res.memory.fingerprint(), run.rec.memoryFingerprint);
        EXPECT_EQ(res.instructions, run.rec.totalInstructions);
        for (std::size_t c = 0; c < cores; ++c) {
            EXPECT_EQ(hashes[c], run.rec.cores[c].loadValueHash)
                << "par core " << c;
        }
    }
}

std::vector<sim::RecorderConfig>
baseAndOptWithDeps()
{
    std::vector<sim::RecorderConfig> p(2);
    p[0].mode = sim::RecorderMode::Base;
    p[0].maxIntervalInstructions = 0;
    p[0].recordDependencies = true;
    p[1].mode = sim::RecorderMode::Opt;
    p[1].maxIntervalInstructions = 0;
    p[1].recordDependencies = true;
    return p;
}

class CoherenceConformanceKernels
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CoherenceConformanceKernels, BothBackendsReplayBitIdentically)
{
    const auto policies = baseAndOptWithDeps();
    for (const sim::CoherenceKind kind :
         {sim::CoherenceKind::Snoopy, sim::CoherenceKind::Directory}) {
        SCOPED_TRACE(sim::toString(kind));
        const ConformanceRun run =
            record(GetParam(), 4, kind, policies);
        ASSERT_GT(run.rec.totalInstructions, 0u);
        for (std::size_t pol = 0; pol < policies.size(); ++pol) {
            SCOPED_TRACE(sim::toString(policies[pol].mode));
            verifyPolicy(run, pol, 4);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, CoherenceConformanceKernels,
    ::testing::ValuesIn(rr::workloads::kernelNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(CoherenceConformance, DirectoryScalesTo32And64Cores)
{
    // The sparse-snoop regime the unit kernels cannot reach at 4
    // cores: wide sharer sets, banked-grant concurrency, and directory
    // entry churn. Opt-with-deps only (the expensive part is the
    // recording, shared across both engines); scale stays at 1 to
    // bound runtime.
    std::vector<sim::RecorderConfig> policies(1);
    policies[0].mode = sim::RecorderMode::Opt;
    policies[0].recordDependencies = true;
    for (const std::uint32_t cores : {32u, 64u}) {
        SCOPED_TRACE(testing::Message() << cores << " cores");
        const ConformanceRun run =
            record("fft", cores, sim::CoherenceKind::Directory, policies);
        ASSERT_GT(run.rec.totalInstructions, 0u);
        verifyPolicy(run, 0, 8);
    }
}

TEST(CoherenceConformance, DirectoryOptLogStaysCompact)
{
    // The TRAQ local-write-pending guard and the Section 4.3 bumps are
    // conservative: they may only add reordered entries. Guard against
    // a regression that degrades Opt toward Base wholesale — the
    // directory Opt log must stay well under the Base log for the same
    // execution.
    const auto policies = baseAndOptWithDeps();
    const ConformanceRun run =
        record("radix", 8, sim::CoherenceKind::Directory, policies);
    rnr::LogStats base, opt;
    for (const auto &log : run.rec.logs[0])
        base.accumulate(log);
    for (const auto &log : run.rec.logs[1])
        opt.accumulate(log);
    ASSERT_GT(base.reordered(), 0u);
    // Small runs leave real races a large share of the log, so the
    // margin is loose; a guard-gone regression logs ~100% of Base.
    EXPECT_LT(opt.reordered(), base.reordered() * 3 / 4)
        << "directory Opt logging lost its filtering power";
}

// --- .rrlog coherence tagging ---------------------------------------

rnr::RecordingMeta
tinyMeta(sim::CoherenceKind kind)
{
    rnr::RecordingMeta meta;
    meta.kernel = "fft";
    meta.cores = 2;
    meta.scale = 1;
    meta.intensity = workloads::WorkloadParams{}.intensity;
    meta.workloadSeed = workloads::WorkloadParams{}.seed;
    meta.machineSeed = sim::MachineConfig{}.seed;
    meta.mode = sim::RecorderMode::Opt;
    meta.coherence = kind;
    return meta;
}

TEST(CoherenceConformance, RrlogHeaderFlagMirrorsMetaTag)
{
    for (const sim::CoherenceKind kind :
         {sim::CoherenceKind::Snoopy, sim::CoherenceKind::Directory}) {
        SCOPED_TRACE(sim::toString(kind));
        const std::string path = ::testing::TempDir() +
                                 "rr_coherence_tag_" +
                                 sim::toString(kind) + ".rrlog";
        {
            rnr::LogWriter writer(path, tinyMeta(kind));
            writer.finish(rnr::RecordingSummary{});
        }
        rnr::LogReader reader(path);
        EXPECT_EQ(reader.directory(),
                  kind == sim::CoherenceKind::Directory);
        EXPECT_EQ(reader.meta().coherence, kind);
        std::remove(path.c_str());
    }
}

TEST(CoherenceConformance, CoherenceTagChangesConfigFingerprint)
{
    // A directory-tagged log presented to a snoopy-machine reader (or
    // vice versa) must look like a different machine, not a replayable
    // file: the coherence kind participates in the meta fingerprint.
    EXPECT_NE(tinyMeta(sim::CoherenceKind::Snoopy).fingerprint(),
              tinyMeta(sim::CoherenceKind::Directory).fingerprint());
}

TEST(CoherenceConformance, FlagMetaMismatchIsRejected)
{
    const std::string path =
        ::testing::TempDir() + "rr_coherence_mismatch.rrlog";
    {
        rnr::LogWriter writer(path,
                              tinyMeta(sim::CoherenceKind::Directory));
        writer.finish(rnr::RecordingSummary{});
    }

    // Strip the directory flag from the header (re-sealing the header
    // CRC so only the cross-check can object) and expect the reader to
    // refuse: the flags and the meta chunk now tell different stories.
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    ASSERT_TRUE(f.good());
    std::vector<std::uint8_t> header(rnr::fmt::kFileHeaderBytes);
    f.read(reinterpret_cast<char *>(header.data()),
           static_cast<std::streamsize>(header.size()));
    header[rnr::fmt::kFlagsOffset] &=
        static_cast<std::uint8_t>(~rnr::fmt::kFlagDirectory);
    const std::uint32_t crc =
        rnr::fmt::crc32(header.data(), header.size() - 4);
    header[header.size() - 4] = static_cast<std::uint8_t>(crc);
    header[header.size() - 3] = static_cast<std::uint8_t>(crc >> 8);
    header[header.size() - 2] = static_cast<std::uint8_t>(crc >> 16);
    header[header.size() - 1] = static_cast<std::uint8_t>(crc >> 24);
    f.seekp(0);
    f.write(reinterpret_cast<const char *>(header.data()),
            static_cast<std::streamsize>(header.size()));
    f.close();

    try {
        rnr::LogReader reader(path);
        FAIL() << "mismatched coherence tag was accepted";
    } catch (const rnr::LogStoreError &e) {
        EXPECT_NE(std::string(e.what()).find("coherence tag mismatch"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

} // namespace
