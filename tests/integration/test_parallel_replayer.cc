/**
 * @file
 * Determinism gate for the multi-threaded replay engine
 * (rnr::ParallelReplayer): for every kernel, both recorder modes, and
 * worker counts 2/4/8, the engine's final memory image, architectural
 * contexts, instruction count, per-core load-value hashes, and modelled
 * replay cost must be byte-identical to the sequential replayer's —
 * and both must match the recording. Also checks the measured-schedule
 * accounting, the engine stats surface, and that a corrupted log makes
 * both engines report the *same* divergence.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "machine/machine.hh"
#include "rnr/parallel_replayer.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

struct DepRun
{
    workloads::Workload workload;
    mem::BackingStore initial;
    machine::RecordingResult rec;
    std::vector<rnr::CoreLog> patched;
};

DepRun
recordWithDeps(const std::string &kernel, std::uint32_t cores,
               sim::RecorderMode mode, std::uint64_t max_interval)
{
    workloads::WorkloadParams wp;
    wp.numThreads = cores;
    wp.scale = 1;
    DepRun run;
    run.workload = workloads::buildKernel(kernel, wp);

    sim::MachineConfig cfg;
    cfg.numCores = cores;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0].mode = mode;
    policies[0].maxIntervalInstructions = max_interval;
    policies[0].recordDependencies = true;

    machine::Machine m(cfg, run.workload.program, policies);
    run.initial = m.initialMemory();
    run.rec = m.run(500'000'000ULL);
    for (auto &log : run.rec.logs[0])
        run.patched.push_back(rnr::patch(log));
    return run;
}

rnr::ReplayResult
runSequential(const DepRun &run, std::vector<std::uint64_t> &hashes)
{
    rnr::Replayer rep(run.workload.program, run.patched,
                      run.initial.clone());
    rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
        hashes[c] = machine::mixLoadValue(hashes[c], v);
    });
    return rep.run();
}

rnr::ReplayResult
runParallel(const DepRun &run, std::uint32_t workers,
            std::vector<std::uint64_t> &hashes)
{
    rnr::ParallelReplayOptions opts;
    opts.workers = workers;
    rnr::ParallelReplayer rep(run.workload.program, run.patched,
                              run.initial.clone(), opts);
    rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
        hashes[c] = machine::mixLoadValue(hashes[c], v);
    });
    return rep.run();
}

void
expectBitIdentical(const DepRun &run, std::uint32_t workers)
{
    const std::size_t cores = run.rec.cores.size();
    std::vector<std::uint64_t> seq_hashes(cores, 0);
    const rnr::ReplayResult seq = runSequential(run, seq_hashes);
    std::vector<std::uint64_t> par_hashes(cores, 0);
    const rnr::ReplayResult par = runParallel(run, workers, par_hashes);

    // Both engines against the recording...
    EXPECT_EQ(seq.memory.fingerprint(), run.rec.memoryFingerprint);
    EXPECT_EQ(par.memory.fingerprint(), run.rec.memoryFingerprint);
    EXPECT_EQ(par.instructions, run.rec.totalInstructions);
    for (std::size_t c = 0; c < cores; ++c) {
        EXPECT_EQ(par_hashes[c], run.rec.cores[c].loadValueHash)
            << "core " << c;
    }

    // ...and against each other, including the full architectural
    // contexts and the (schedule-independent) modelled cost.
    EXPECT_EQ(par.instructions, seq.instructions);
    EXPECT_EQ(par.intervals, seq.intervals);
    EXPECT_EQ(par.cost.userCycles, seq.cost.userCycles);
    EXPECT_EQ(par.cost.osCycles, seq.cost.osCycles);
    EXPECT_EQ(par_hashes, seq_hashes);
    ASSERT_EQ(par.contexts.size(), seq.contexts.size());
    for (std::size_t c = 0; c < cores; ++c) {
        EXPECT_EQ(par.contexts[c].pc, seq.contexts[c].pc) << "core " << c;
        for (isa::Reg r = 0; r < isa::kNumRegs; ++r) {
            EXPECT_EQ(par.contexts[c].regs[r], seq.contexts[c].regs[r])
                << "core " << c << " r" << unsigned(r);
        }
    }
}

class ParallelReplayerKernels
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ParallelReplayerKernels, BitIdenticalToSequentialOpt)
{
    const DepRun run = recordWithDeps(GetParam(), 4,
                                      sim::RecorderMode::Opt, 1024);
    for (const std::uint32_t workers : {2u, 4u, 8u})
        expectBitIdentical(run, workers);
}

TEST_P(ParallelReplayerKernels, BitIdenticalToSequentialBase)
{
    const DepRun run = recordWithDeps(GetParam(), 4,
                                      sim::RecorderMode::Base, 1024);
    for (const std::uint32_t workers : {2u, 4u, 8u})
        expectBitIdentical(run, workers);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ParallelReplayerKernels,
    ::testing::ValuesIn(rr::workloads::kernelNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(ParallelReplayer, EightCoresSmallIntervals)
{
    const DepRun run =
        recordWithDeps("ocean", 8, sim::RecorderMode::Opt, 512);
    expectBitIdentical(run, 8);
}

TEST(ParallelReplayer, MeasuredScheduleAccountingIsSane)
{
    const DepRun run =
        recordWithDeps("fft", 8, sim::RecorderMode::Opt, 1024);
    std::vector<std::uint64_t> hashes(8, 0);
    const rnr::ReplayResult res = runParallel(run, 4, hashes);

    EXPECT_EQ(res.workers, 4u);
    EXPECT_GT(res.wallSeconds, 0.0);
    EXPECT_GT(res.measuredSerialSeconds, 0.0);
    EXPECT_GT(res.measuredSpanSeconds, 0.0);
    // The span can never beat the critical path nor the worker count,
    // and can never exceed the serial work.
    EXPECT_LE(res.measuredSpanSeconds, res.measuredSerialSeconds + 1e-9);
    EXPECT_LE(res.measuredSerialSeconds / res.measuredSpanSeconds,
              4.0 + 1e-9);

    EXPECT_EQ(res.engineStats.counterValue("intervals_replayed"),
              res.intervals);
    EXPECT_GT(res.engineStats.counterValue("tasks_run"), 0u);
    EXPECT_GT(res.engineStats.counterValue("words_committed"), 0u);
}

TEST(ParallelReplayer, BatchedAndUnbatchedCommitsAreBitIdentical)
{
    // The batched-commit optimization defers same-core-chain commits
    // until a cross-core successor (or the chain end) needs them; with
    // it off every interval commits individually. Both must reproduce
    // the recording exactly, and batching can only ever commit fewer
    // (deduplicated) words.
    for (const char *kernel : {"ocean", "fft"}) {
        const DepRun run =
            recordWithDeps(kernel, 4, sim::RecorderMode::Opt, 512);
        std::vector<std::uint64_t> seq_hashes(4, 0);
        const rnr::ReplayResult seq = runSequential(run, seq_hashes);

        std::uint64_t words_batched = 0, words_unbatched = 0;
        for (const bool batch : {false, true}) {
            for (const std::uint32_t workers : {2u, 8u}) {
                rnr::ParallelReplayOptions opts;
                opts.workers = workers;
                opts.batchCommits = batch;
                rnr::ParallelReplayer rep(run.workload.program,
                                          run.patched,
                                          run.initial.clone(), opts);
                std::vector<std::uint64_t> hashes(4, 0);
                rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
                    hashes[c] = machine::mixLoadValue(hashes[c], v);
                });
                const rnr::ReplayResult res = rep.run();
                EXPECT_EQ(res.memory.fingerprint(),
                          seq.memory.fingerprint())
                    << kernel << " batch=" << batch
                    << " workers=" << workers;
                EXPECT_EQ(res.instructions, seq.instructions);
                EXPECT_EQ(res.intervals, seq.intervals);
                EXPECT_EQ(hashes, seq_hashes);
                const std::uint64_t words =
                    res.engineStats.counterValue("words_committed");
                EXPECT_GT(words, 0u);
                (batch ? words_batched : words_unbatched) = words;
            }
        }
        EXPECT_LE(words_batched, words_unbatched) << kernel;
    }
}

TEST(ParallelReplayer, SingleWorkerRunsInline)
{
    const DepRun run =
        recordWithDeps("lu", 4, sim::RecorderMode::Opt, 1024);
    expectBitIdentical(run, 1);
}

TEST(ParallelReplayer, DivergenceMatchesSequentialEngine)
{
    DepRun run = recordWithDeps("fft", 4, sim::RecorderMode::Opt, 1024);

    // Same corruption idiom as the sequential divergence tests: prepend
    // an entry whose kind cannot match the core's first instruction.
    const sim::CoreId core = 2;
    const isa::Program &prog = run.workload.program;
    const isa::Instruction &first = prog.at(prog.entryFor(core));
    const rnr::LogEntry bogus = first.isStore()
                                    ? rnr::LogEntry::reorderedLoad(0xdead)
                                    : rnr::LogEntry::dummyStore();
    auto &entries = run.patched[core].intervals[0].entries;
    entries.insert(entries.begin(), bogus);

    rnr::DivergenceReport seq_report;
    try {
        std::vector<std::uint64_t> hashes(4, 0);
        runSequential(run, hashes);
        FAIL() << "sequential replay accepted a corrupt log";
    } catch (const rnr::ReplayDivergence &d) {
        seq_report = d.report();
    }

    for (const std::uint32_t workers : {2u, 8u}) {
        try {
            std::vector<std::uint64_t> hashes(4, 0);
            runParallel(run, workers, hashes);
            FAIL() << "parallel replay accepted a corrupt log";
        } catch (const rnr::ReplayDivergence &d) {
            const rnr::DivergenceReport &r = d.report();
            EXPECT_EQ(r.core, seq_report.core);
            EXPECT_EQ(r.intervalIndex, seq_report.intervalIndex);
            EXPECT_EQ(r.entryIndex, seq_report.entryIndex);
            EXPECT_EQ(r.pc, seq_report.pc);
            EXPECT_EQ(r.entry, seq_report.entry);
            EXPECT_EQ(r.expected, seq_report.expected);
            EXPECT_EQ(r.actual, seq_report.actual);
            EXPECT_EQ(r.timestamp, seq_report.timestamp);
            EXPECT_FALSE(r.recentSteps.empty());
        }
    }
}

TEST(ParallelReplayerDeathTest, RunIsSingleUse)
{
    const DepRun run =
        recordWithDeps("lu", 2, sim::RecorderMode::Opt, 1024);
    rnr::ParallelReplayer rep(run.workload.program, run.patched,
                              run.initial.clone(), {});
    rep.run();
    EXPECT_DEATH(rep.run(), "single-use");
}

} // namespace
