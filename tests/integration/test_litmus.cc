/**
 * @file
 * Litmus tests: the machine exhibits relaxed-consistency behaviour
 * (that is the whole point of the paper — SC/TSO recorders cannot
 * capture it), fences restore ordering, and every litmus execution
 * records and replays exactly under both RelaxReplay designs.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "machine/machine.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"

namespace
{

using namespace rr;
using isa::Assembler;
using isa::Program;

constexpr sim::Addr kX = 0x50000; // separate lines
constexpr sim::Addr kY = 0x50040;
constexpr sim::Addr kOut = 0x50080;

/** Record + replay under Base and Opt; return the machine for state. */
std::unique_ptr<machine::Machine>
runAndVerify(const Program &p, std::uint32_t cores)
{
    sim::MachineConfig cfg;
    cfg.numCores = cores;
    std::vector<sim::RecorderConfig> policies(2);
    policies[0].mode = sim::RecorderMode::Base;
    policies[1].mode = sim::RecorderMode::Opt;

    auto m = std::make_unique<machine::Machine>(cfg, p, policies);
    const mem::BackingStore initial = m->initialMemory();
    auto rec = m->run(100'000'000ULL);

    for (std::size_t pol = 0; pol < policies.size(); ++pol) {
        std::vector<rnr::CoreLog> patched;
        for (auto &log : rec.logs[pol])
            patched.push_back(rnr::patch(log));
        rnr::Replayer rep(p, std::move(patched), initial.clone());
        auto res = rep.run();
        EXPECT_EQ(res.memory.fingerprint(), rec.memoryFingerprint)
            << "policy " << pol;
        for (std::size_t c = 0; c < cores; ++c) {
            for (int r = 0; r < 32; ++r) {
                EXPECT_EQ(res.contexts[c].regs[r],
                          rec.cores[c].finalRegs[r])
                    << "policy " << pol << " core " << c << " r" << r;
            }
        }
    }
    return m;
}

/**
 * Message passing (MP): T0 stores data then flag; T1 spins on the flag
 * and reads data. The outcome register ends in T1's r5.
 */
Program
mp(bool fenced)
{
    Assembler a;
    a.entry(0);
    a.li(3, kX);
    a.li(4, 42);
    a.st(4, 3, 0); // data
    if (fenced)
        a.fence();
    a.li(3, kY);
    a.li(4, 1);
    a.st(4, 3, 0); // flag
    a.halt();
    a.entry(1);
    a.li(3, kY);
    a.label("spin");
    a.ld(4, 3, 0);
    a.beq(4, 0, "spin");
    a.li(3, kX);
    a.ld(5, 3, 0);
    a.halt();
    return a.assemble();
}

TEST(Litmus, MessagePassingWithFenceNeverStale)
{
    auto m = runAndVerify(mp(true), 2);
    // With the release fence, T1 must observe the data.
    EXPECT_EQ(m->core(1).archReg(5), 42u);
}

TEST(Litmus, MessagePassingRecordsExactlyEvenUnfenced)
{
    // Without the fence the data read may be stale (RC allows it);
    // whatever happened, runAndVerify() checked it replays exactly.
    auto m = runAndVerify(mp(false), 2);
    const std::uint64_t seen = m->core(1).archReg(5);
    EXPECT_TRUE(seen == 42u || seen == 0u);
}

/**
 * Store buffering (SB): T0: x=1; r=y. T1: y=1; r=x. Under SC at least
 * one thread sees the other's store; under RC both loads may bypass
 * the buffered stores and read 0 (r0==0 && r1==0 is the relaxed
 * outcome SC/TSO recorders cannot produce or capture).
 */
Program
sb(bool fenced)
{
    Assembler a;
    a.entry(0);
    a.li(3, kX);
    a.li(4, kY);
    a.li(5, 1);
    a.st(5, 3, 0); // x = 1
    if (fenced)
        a.fence();
    a.ld(6, 4, 0); // r = y
    a.li(7, kOut);
    a.st(6, 7, 0);
    a.halt();
    a.entry(1);
    a.li(3, kY);
    a.li(4, kX);
    a.li(5, 1);
    a.st(5, 3, 0); // y = 1
    if (fenced)
        a.fence();
    a.ld(6, 4, 0); // r = x
    a.li(7, kOut);
    a.st(6, 7, 8);
    a.halt();
    return a.assemble();
}

TEST(Litmus, StoreBufferingRelaxedOutcomeOccursAndReplays)
{
    // Without fences, our RC machine lets both loads bypass the
    // write-buffered stores: the non-SC outcome 0/0 appears, which is
    // exactly the class of execution RelaxReplay exists to record.
    auto m = runAndVerify(sb(false), 2);
    const std::uint64_t r0 = m->memory().read64(kOut);
    const std::uint64_t r1 = m->memory().read64(kOut + 8);
    EXPECT_EQ(r0, 0u) << "expected the relaxed outcome on this machine";
    EXPECT_EQ(r1, 0u) << "expected the relaxed outcome on this machine";
}

TEST(Litmus, StoreBufferingFencedIsSequentiallyConsistent)
{
    auto m = runAndVerify(sb(true), 2);
    const std::uint64_t r0 = m->memory().read64(kOut);
    const std::uint64_t r1 = m->memory().read64(kOut + 8);
    EXPECT_TRUE(r0 == 1u || r1 == 1u)
        << "with full fences at least one load sees the other store";
}

/**
 * Coherence (CoRR): two reads of the same location by the same thread
 * must not observe values going backwards, even under RC (write
 * atomicity + per-location coherence).
 */
TEST(Litmus, CoherentReadReadNeverGoesBackwards)
{
    Assembler a;
    a.entry(0); // writer: x = 1, 2, 3, ...
    a.li(3, kX);
    a.li(4, 1);
    a.label("wloop");
    a.st(4, 3, 0);
    a.addi(4, 4, 1);
    a.li(5, 200);
    a.blt(4, 5, "wloop");
    a.halt();
    a.entry(1); // reader: pairs of reads, flag if v2 < v1
    a.li(3, kX);
    a.li(8, 0) /* violation flag */;
    a.li(9, 100);
    a.label("rloop");
    a.ld(5, 3, 0);
    a.ld(6, 3, 0);
    a.bge(6, 5, "mono");
    a.li(8, 1);
    a.label("mono");
    a.addi(9, 9, -1);
    a.bne(9, 0, "rloop");
    a.halt();
    const Program p = a.assemble();
    auto m = runAndVerify(p, 2);
    EXPECT_EQ(m->core(1).archReg(8), 0u) << "coherence violation";
}

/**
 * Atomicity: concurrent fetch-adds from every core never lose updates
 * regardless of consistency relaxation.
 */
TEST(Litmus, FetchAddNeverLosesUpdates)
{
    Assembler b;
    b.li(29, 1);
    b.li(3, kX);
    b.li(4, 50);
    b.label("loop");
    b.fadd(5, 29, 3, 0);
    b.addi(4, 4, -1);
    b.bne(4, 0, "loop");
    b.halt();
    const Program p = b.assemble();
    auto m = runAndVerify(p, 8);
    EXPECT_EQ(m->memory().read64(kX), 8u * 50u);
}

} // namespace
