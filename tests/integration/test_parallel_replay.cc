/**
 * @file
 * End-to-end validation of dependency recording and parallel replay
 * (Section 3.6): record with recordDependencies, build the dependency
 * DAG schedule, and replay in the schedule's (non-timestamp) order —
 * the result must still match the recorded execution exactly. This is
 * the property that makes parallel replay sound: ANY topological order
 * of the recorded DAG reproduces the execution.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "rnr/parallel_schedule.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

struct DepRun
{
    workloads::Workload workload;
    mem::BackingStore initial;
    machine::RecordingResult rec;
    std::vector<rnr::CoreLog> patched;
};

DepRun
recordWithDeps(const std::string &kernel, std::uint32_t cores,
               std::uint64_t max_interval)
{
    workloads::WorkloadParams wp;
    wp.numThreads = cores;
    wp.scale = 1;
    DepRun run;
    run.workload = workloads::buildKernel(kernel, wp);

    sim::MachineConfig cfg;
    cfg.numCores = cores;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0].mode = sim::RecorderMode::Opt;
    policies[0].maxIntervalInstructions = max_interval;
    policies[0].recordDependencies = true;

    machine::Machine m(cfg, run.workload.program, policies);
    run.initial = m.initialMemory();
    run.rec = m.run(500'000'000ULL);
    for (auto &log : run.rec.logs[0])
        run.patched.push_back(rnr::patch(log));
    return run;
}

void
verifyScheduleReplay(const DepRun &run)
{
    const auto sched = rnr::buildParallelSchedule(run.patched);
    ASSERT_GT(sched.order.size(), 0u);

    std::vector<rnr::Replayer::OrderItem> order;
    for (const auto &node : sched.order)
        order.push_back({node.core, node.index});

    rnr::Replayer rep(run.workload.program, run.patched,
                      run.initial.clone());
    std::vector<std::uint64_t> hashes(run.rec.cores.size(), 0);
    rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
        hashes[c] = machine::mixLoadValue(hashes[c], v);
    });
    auto res = rep.runInOrder(order);

    EXPECT_EQ(res.memory.fingerprint(), run.rec.memoryFingerprint);
    EXPECT_EQ(res.instructions, run.rec.totalInstructions);
    for (std::size_t c = 0; c < run.rec.cores.size(); ++c)
        EXPECT_EQ(hashes[c], run.rec.cores[c].loadValueHash)
            << "core " << c;
}

class ParallelReplayKernels : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ParallelReplayKernels, DagOrderReproducesExecution)
{
    verifyScheduleReplay(recordWithDeps(GetParam(), 4, 1024));
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ParallelReplayKernels,
    ::testing::ValuesIn(rr::workloads::kernelNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(ParallelReplay, EightCoresSmallIntervals)
{
    verifyScheduleReplay(recordWithDeps("fft", 8, 512));
}

TEST(ParallelReplay, SpeedupIsAvailableWithSmallIntervals)
{
    // Small interval caps create replay parallelism (the reason Karma
    // and Cyrus bound their chunks): the DAG schedule must beat the
    // sequential replay for a barrier-light, queue-based kernel.
    const DepRun run = recordWithDeps("cholesky", 4, 512);
    const auto sched = rnr::buildParallelSchedule(run.patched);
    EXPECT_GT(sched.speedup(), 1.3) << "expected usable parallelism";
    EXPECT_LE(sched.speedup(), 4.0) << "cannot beat the core count";
}

TEST(ParallelReplay, EdgesAreRecordedAndPackable)
{
    const DepRun run = recordWithDeps("water-nsq", 4, 1024);
    std::uint64_t edges = 0;
    for (const auto &log : run.rec.logs[0]) {
        for (const auto &iv : log.intervals)
            edges += iv.predecessors.size();
    }
    EXPECT_GT(edges, 0u);

    // Dependency-carrying logs round-trip through the packed format.
    for (const auto &log : run.rec.logs[0]) {
        const auto back = rnr::unpack(rnr::pack(log));
        ASSERT_EQ(back.intervals.size(), log.intervals.size());
        for (std::size_t i = 0; i < log.intervals.size(); ++i) {
            EXPECT_EQ(back.intervals[i].predecessors,
                      log.intervals[i].predecessors);
        }
    }
}

TEST(ParallelReplay, TimestampOrderStillWorksWithDeps)
{
    // The dependency-recorded log remains a valid total-order log.
    const DepRun run = recordWithDeps("radix", 4, 1024);
    rnr::Replayer rep(run.workload.program, run.patched,
                      run.initial.clone());
    auto res = rep.run();
    EXPECT_EQ(res.memory.fingerprint(), run.rec.memoryFingerprint);
}

} // namespace
