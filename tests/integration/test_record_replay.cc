/**
 * @file
 * End-to-end determinism: record a kernel execution under every
 * recorder policy, patch the log, replay it sequentially, and require
 *  (a) every replayed load/atomic value to equal the recorded one (in
 *      per-core program order),
 *  (b) identical final memory images,
 *  (c) identical per-core instruction counts and final registers.
 * This is the property RelaxReplay exists to provide; it must hold for
 * Base and Opt, bounded (4K) and unbounded intervals, any core count,
 * and any workload.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "rnr/log.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

struct Scenario
{
    std::string kernel;
    std::uint32_t cores;
    std::uint64_t scale;
};

void
verifyRecordReplay(const Scenario &sc)
{
    workloads::WorkloadParams wp;
    wp.numThreads = sc.cores;
    wp.scale = sc.scale;
    auto w = workloads::buildKernel(sc.kernel, wp);

    sim::MachineConfig cfg;
    cfg.numCores = sc.cores;
    std::vector<sim::RecorderConfig> policies(4);
    policies[0] = {sim::RecorderMode::Base, 4096};
    policies[1] = {sim::RecorderMode::Base, 0};
    policies[2] = {sim::RecorderMode::Opt, 4096};
    policies[3] = {sim::RecorderMode::Opt, 0};

    machine::Machine m(cfg, w.program, policies);
    const mem::BackingStore initial = m.initialMemory();
    auto rec = m.run(500'000'000ULL);
    ASSERT_GT(rec.totalInstructions, 0u);

    for (std::size_t pol = 0; pol < policies.size(); ++pol) {
        SCOPED_TRACE(testing::Message()
                     << sc.kernel << " cores=" << sc.cores << " policy="
                     << sim::toString(policies[pol].mode) << "/"
                     << policies[pol].maxIntervalInstructions);

        // The log replays exactly the retired instruction stream.
        rnr::LogStats stats;
        std::vector<rnr::CoreLog> patched;
        for (sim::CoreId c = 0; c < sc.cores; ++c) {
            rnr::LogStats per_core;
            per_core.accumulate(rec.logs[pol][c]);
            EXPECT_EQ(per_core.instructions(),
                      rec.cores[c].retiredInstructions)
                << "core " << c;
            stats += per_core;
            patched.push_back(rnr::patch(rec.logs[pol][c]));
        }

        // Serialization round-trips (the log a real system would save).
        for (sim::CoreId c = 0; c < sc.cores; ++c) {
            const auto packed = rnr::pack(rec.logs[pol][c]);
            const auto back = rnr::unpack(packed);
            ASSERT_EQ(back.intervals.size(),
                      rec.logs[pol][c].intervals.size());
        }

        rnr::Replayer rep(w.program, std::move(patched), initial.clone());
        std::vector<std::uint64_t> hashes(sc.cores, 0);
        std::vector<std::uint64_t> counts(sc.cores, 0);
        rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
            hashes[c] = machine::mixLoadValue(hashes[c], v);
            ++counts[c];
        });
        auto res = rep.run();

        EXPECT_EQ(res.memory.fingerprint(), rec.memoryFingerprint);
        EXPECT_EQ(res.instructions, rec.totalInstructions);
        for (sim::CoreId c = 0; c < sc.cores; ++c) {
            EXPECT_EQ(counts[c], rec.cores[c].retiredLoads)
                << "core " << c;
            EXPECT_EQ(hashes[c], rec.cores[c].loadValueHash)
                << "core " << c;
            EXPECT_EQ(res.contexts[c].instructions,
                      rec.cores[c].retiredInstructions)
                << "core " << c;
            EXPECT_TRUE(res.contexts[c].halted) << "core " << c;
            for (int r = 0; r < 32; ++r) {
                EXPECT_EQ(res.contexts[c].regs[r],
                          rec.cores[c].finalRegs[r])
                    << "core " << c << " r" << r;
            }
        }
    }
}

class RecordReplayAllKernels
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RecordReplayAllKernels, DeterministicAt4Cores)
{
    verifyRecordReplay({GetParam(), 4, 1});
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, RecordReplayAllKernels,
    ::testing::ValuesIn(rr::workloads::kernelNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

class RecordReplayCoreCounts : public ::testing::TestWithParam<int>
{
};

TEST_P(RecordReplayCoreCounts, FftAndWaterScaleWithCores)
{
    verifyRecordReplay({"fft", static_cast<std::uint32_t>(GetParam()), 1});
    verifyRecordReplay(
        {"water-nsq", static_cast<std::uint32_t>(GetParam()), 1});
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, RecordReplayCoreCounts,
                         ::testing::Values(1, 2, 4, 8, 16));

class RecordReplaySeeds : public ::testing::TestWithParam<int>
{
};

TEST_P(RecordReplaySeeds, CholeskySeedSweep)
{
    workloads::WorkloadParams wp;
    wp.numThreads = 4;
    wp.scale = 1;
    wp.seed = 1000 + GetParam();
    auto w = workloads::buildKernel("cholesky", wp);

    sim::MachineConfig cfg;
    cfg.numCores = 4;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0] = {sim::RecorderMode::Opt, 0};
    machine::Machine m(cfg, w.program, policies);
    const mem::BackingStore initial = m.initialMemory();
    auto rec = m.run(500'000'000ULL);

    std::vector<rnr::CoreLog> patched;
    for (auto &log : rec.logs[0])
        patched.push_back(rnr::patch(log));
    rnr::Replayer rep(w.program, std::move(patched), initial.clone());
    auto res = rep.run();
    EXPECT_EQ(res.memory.fingerprint(), rec.memoryFingerprint);
    EXPECT_EQ(res.instructions, rec.totalInstructions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordReplaySeeds,
                         ::testing::Range(0, 6));

TEST(RecordReplay, LargerScaleStillDeterministic)
{
    verifyRecordReplay({"fft", 8, 4});
}

TEST(RecordReplay, DirectoryEvictionModeStaysCorrect)
{
    // Section 4.3: with the conservative dirty-eviction bump enabled,
    // replay must remain exact (it only adds reordered entries).
    workloads::WorkloadParams wp;
    wp.numThreads = 4;
    wp.scale = 1;
    auto w = workloads::buildKernel("ocean", wp);

    sim::MachineConfig cfg;
    cfg.numCores = 4;
    std::vector<sim::RecorderConfig> policies(2);
    policies[0] = {sim::RecorderMode::Opt, 0};
    policies[1] = {sim::RecorderMode::Opt, 0};
    policies[1].directoryEvictionBump = true;

    machine::Machine m(cfg, w.program, policies);
    const mem::BackingStore initial = m.initialMemory();
    auto rec = m.run(500'000'000ULL);

    for (std::size_t pol = 0; pol < 2; ++pol) {
        std::vector<rnr::CoreLog> patched;
        for (auto &log : rec.logs[pol])
            patched.push_back(rnr::patch(log));
        rnr::Replayer rep(w.program, std::move(patched), initial.clone());
        auto res = rep.run();
        EXPECT_EQ(res.memory.fingerprint(), rec.memoryFingerprint);
    }

    // The bump mode can only add reordered accesses, never remove.
    rnr::LogStats plain, bumped;
    for (auto &log : rec.logs[0])
        plain.accumulate(log);
    for (auto &log : rec.logs[1])
        bumped.accumulate(log);
    EXPECT_GE(bumped.reordered(), plain.reordered());
}

TEST(RecordReplay, TinyTraqStressesBackPressure)
{
    // An 8-entry TRAQ forces constant dispatch stalls; correctness must
    // be unaffected.
    workloads::WorkloadParams wp;
    wp.numThreads = 2;
    wp.scale = 1;
    auto w = workloads::buildKernel("lu", wp);

    sim::MachineConfig cfg;
    cfg.numCores = 2;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0] = {sim::RecorderMode::Opt, 0};
    policies[0].traqEntries = 8;

    machine::Machine m(cfg, w.program, policies);
    const mem::BackingStore initial = m.initialMemory();
    auto rec = m.run(500'000'000ULL);
    EXPECT_GT(m.core(0).stats().counterValue("traq_full_stalls"), 0u);

    std::vector<rnr::CoreLog> patched;
    for (auto &log : rec.logs[0])
        patched.push_back(rnr::patch(log));
    rnr::Replayer rep(w.program, std::move(patched), initial.clone());
    auto res = rep.run();
    EXPECT_EQ(res.memory.fingerprint(), rec.memoryFingerprint);
}

TEST(RecordReplay, TinyIntervalCapStressesPatching)
{
    // A 64-instruction interval cap produces many short intervals and
    // many cross-interval stores; patching and replay must hold up.
    workloads::WorkloadParams wp;
    wp.numThreads = 4;
    wp.scale = 1;
    auto w = workloads::buildKernel("radix", wp);

    sim::MachineConfig cfg;
    cfg.numCores = 4;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0] = {sim::RecorderMode::Base, 64};

    machine::Machine m(cfg, w.program, policies);
    const mem::BackingStore initial = m.initialMemory();
    auto rec = m.run(500'000'000ULL);

    rnr::LogStats stats;
    for (auto &log : rec.logs[0])
        stats.accumulate(log);
    EXPECT_GT(stats.reordered(), 0u);

    std::vector<rnr::CoreLog> patched;
    for (auto &log : rec.logs[0])
        patched.push_back(rnr::patch(log));
    rnr::Replayer rep(w.program, std::move(patched), initial.clone());
    auto res = rep.run();
    EXPECT_EQ(res.memory.fingerprint(), rec.memoryFingerprint);
    EXPECT_EQ(res.instructions, rec.totalInstructions);
}

} // namespace
