/**
 * @file
 * Property tests over randomly generated programs.
 *
 * 1. Golden-model equivalence: a random single-threaded program (ALU
 *    ops, loads/stores, loops with data-dependent branches, atomics)
 *    must produce on the OoO core exactly the architectural state the
 *    functional interpreter produces — across seeds. This exercises
 *    renaming, forwarding, squash/replay and retirement corner cases
 *    that hand-written tests miss.
 *
 * 2. Record/replay determinism on random multi-threaded programs whose
 *    threads hammer a small shared array (maximal racing): the
 *    RelaxReplay log must replay them exactly.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "machine/machine.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "sim/rng.hh"

namespace
{

using namespace rr;
using isa::Assembler;
using isa::Program;
using isa::Reg;

/**
 * Emit a random but guaranteed-terminating program: a counted outer
 * loop whose body is a random mix of ALU ops, memory accesses into a
 * small private array, data-dependent inner branches and occasional
 * atomics.
 */
Program
randomProgram(std::uint64_t seed, bool multithreaded)
{
    sim::Rng rng(seed);
    Assembler a;
    const Reg rBase = 20, rIter = 21, rTmp = 22;
    const std::uint64_t array_words = 16;

    // Private (or shared, when multithreaded) scratch array.
    a.li(rBase, 0x40000);
    if (multithreaded) {
        // All threads share the same array: maximal data racing.
    } else {
        a.nop();
    }
    a.li(rIter, 60 + rng.below(40));
    // Seed some working registers with distinct values.
    for (Reg r = 3; r <= 10; ++r)
        a.li(r, static_cast<std::int64_t>(rng.below(1000)));

    a.label("outer");
    const int body_len = 8 + static_cast<int>(rng.below(16));
    for (int i = 0; i < body_len; ++i) {
        const Reg rd = static_cast<Reg>(3 + rng.below(8));
        const Reg rs1 = static_cast<Reg>(3 + rng.below(8));
        const Reg rs2 = static_cast<Reg>(3 + rng.below(8));
        switch (rng.below(10)) {
          case 0:
          case 1:
            a.add(rd, rs1, rs2);
            break;
          case 2:
            a.sub(rd, rs1, rs2);
            break;
          case 3:
            a.mul(rd, rs1, rs2);
            break;
          case 4:
            a.xor_(rd, rs1, rs2);
            break;
          case 5: { // load from the array (masked index)
            a.andi(rTmp, rs1, static_cast<std::int64_t>(array_words - 1));
            a.slli(rTmp, rTmp, 3);
            a.add(rTmp, rTmp, rBase);
            a.ld(rd, rTmp, 0);
            break;
          }
          case 6: { // store to the array
            a.andi(rTmp, rs1, static_cast<std::int64_t>(array_words - 1));
            a.slli(rTmp, rTmp, 3);
            a.add(rTmp, rTmp, rBase);
            a.st(rs2, rTmp, 0);
            break;
          }
          case 7: { // data-dependent forward branch
            const std::string skip =
                "skip" + std::to_string(seed) + "_" + std::to_string(i);
            a.andi(rTmp, rs1, 1);
            a.beq(rTmp, 0, skip);
            a.addi(rd, rd, 3);
            a.label(skip);
            break;
          }
          case 8: // fetch-add on the array head
            a.fadd(rd, rs2, rBase, 0);
            break;
          default:
            a.addi(rd, rs1, static_cast<std::int64_t>(rng.below(64)));
            break;
        }
    }
    a.addi(rIter, rIter, -1);
    a.bne(rIter, 0, "outer");
    a.halt();
    return a.assemble();
}

class RandomProgramGolden : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomProgramGolden, CoreMatchesInterpreter)
{
    const Program p = randomProgram(1000 + GetParam(), false);

    // Golden run on the functional interpreter.
    mem::BackingStore golden_mem;
    isa::ExecContext golden;
    golden.pc = p.entryFor(0);
    golden.writeReg(isa::kRegThreadId, 0);
    golden.writeReg(isa::kRegNumThreads, 1);
    std::uint64_t guard = 0;
    while (!golden.halted && ++guard < 2'000'000)
        isa::step(p, golden, golden_mem);
    ASSERT_TRUE(golden.halted);

    // Timing run on the full machine (recorder attached for good
    // measure — it must not perturb architectural state).
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    sim::RecorderConfig rc;
    machine::Machine m(cfg, p, {rc});
    auto rec = m.run(200'000'000ULL);

    EXPECT_EQ(rec.cores[0].retiredInstructions, golden.instructions);
    for (int r = 0; r < 32; ++r)
        EXPECT_EQ(m.core(0).archReg(r), golden.regs[r]) << "r" << r;
    EXPECT_EQ(m.memory().fingerprint(), golden_mem.fingerprint());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramGolden,
                         ::testing::Range(0, 12));

class RandomProgramRace : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomProgramRace, RacingThreadsRecordAndReplayExactly)
{
    const Program p = randomProgram(2000 + GetParam(), true);

    sim::MachineConfig cfg;
    cfg.numCores = 4;
    std::vector<sim::RecorderConfig> policies(2);
    policies[0].mode = sim::RecorderMode::Base;
    policies[0].maxIntervalInstructions = 128; // stress patching
    policies[1].mode = sim::RecorderMode::Opt;

    machine::Machine m(cfg, p, policies);
    const mem::BackingStore initial = m.initialMemory();
    auto rec = m.run(200'000'000ULL);

    for (std::size_t pol = 0; pol < policies.size(); ++pol) {
        std::vector<rnr::CoreLog> patched;
        for (auto &log : rec.logs[pol])
            patched.push_back(rnr::patch(log));
        rnr::Replayer rep(p, std::move(patched), initial.clone());
        std::vector<std::uint64_t> hashes(4, 0);
        rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
            hashes[c] = machine::mixLoadValue(hashes[c], v);
        });
        auto res = rep.run();
        EXPECT_EQ(res.memory.fingerprint(), rec.memoryFingerprint)
            << "policy " << pol;
        for (sim::CoreId c = 0; c < 4; ++c) {
            EXPECT_EQ(hashes[c], rec.cores[c].loadValueHash)
                << "policy " << pol << " core " << c;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramRace,
                         ::testing::Range(0, 10));

} // namespace
