/**
 * @file
 * Soak and correctness tests for the replay service run in-process: a
 * real svc::Server on a temp Unix socket, hammered by concurrent
 * client threads over the actual wire protocol.
 *
 * Covers the daemon acceptance criteria: zero lost or duplicated
 * responses under 8 concurrent clients and 200+ mixed jobs, typed
 * quota/capacity enforcement, mid-flight cancellation of queued and
 * running jobs, per-job timeouts, malformed-line robustness, bounded
 * RSS, and byte-identical job results between the daemon path and a
 * direct in-process runJob() call.
 */

#include <gtest/gtest.h>

#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hh"
#include "svc/job_runner.hh"
#include "svc/protocol.hh"
#include "svc/server.hh"

namespace
{

using namespace rr::svc;

constexpr bool kUnderSanitizer =
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    true;
#else
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif
#endif

long
maxRssKib()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

Json
parseEvent(const std::string &line)
{
    std::string error;
    auto v = parseJson(line, error);
    EXPECT_TRUE(v.has_value()) << line << " -> " << error;
    return v ? *v : Json();
}

/** Extract the raw result-object bytes from an untagged completed
 *  event: ...,"result":{...}} — everything between the marker and the
 *  envelope's closing brace. */
std::string
rawResult(const std::string &completed_line)
{
    const std::string marker = ",\"result\":";
    const auto pos = completed_line.find(marker);
    EXPECT_NE(pos, std::string::npos) << completed_line;
    if (pos == std::string::npos)
        return "";
    return completed_line.substr(pos + marker.size(),
                                 completed_line.size() - 1 -
                                     (pos + marker.size()));
}

class ServeTest : public ::testing::Test
{
  protected:
    void
    startServer(Server::Options opts)
    {
        socket_ = "/tmp/rrsim-soak-" + std::to_string(getpid()) + "-" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name() +
                  ".sock";
        opts.socketPath = socket_;
        server_.emplace(std::move(opts));
        thread_ = std::thread([this] {
            try {
                server_->run();
            } catch (const std::exception &e) {
                serverError_ = e.what();
            }
        });
        for (int i = 0; i < 500; ++i) {
            std::string error;
            if (Client::connectUnix(socket_, error))
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        FAIL() << "server never came up: " << serverError_;
    }

    void
    TearDown() override
    {
        if (server_) {
            server_->requestStop(/*drain=*/true);
            thread_.join();
            EXPECT_TRUE(serverError_.empty()) << serverError_;
        }
        ::unlink(socket_.c_str());
    }

    Client
    connect()
    {
        std::string error;
        auto c = Client::connectUnix(socket_, error);
        EXPECT_TRUE(c.has_value()) << error;
        return c ? std::move(*c) : Client();
    }

    /** Read lines until @p pred matches; everything seen (match
     *  included) is appended to @p seen. */
    std::optional<std::string>
    pumpUntil(Client &client,
              const std::function<bool(const Json &)> &pred,
              std::vector<std::string> &seen, double timeout_sec)
    {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration<double>(timeout_sec);
        std::string error;
        while (std::chrono::steady_clock::now() < deadline) {
            auto line = client.readLine(error, 1.0);
            if (!line) {
                if (!error.empty())
                    ADD_FAILURE() << "read error: " << error;
                continue;
            }
            seen.push_back(*line);
            if (pred(parseEvent(*line)))
                return line;
        }
        return std::nullopt;
    }

    std::string socket_;
    std::optional<Server> server_;
    std::thread thread_;
    std::string serverError_;
};

/** A tiny recording every fast job (stats/verify/replay) feeds on. */
std::string
makeProbeLog(const std::string &name)
{
    const std::string path = "/tmp/rrsim-soak-probe-" +
                             std::to_string(getpid()) + "-" + name +
                             ".rrlog";
    JobParams p;
    p.kind = JobKind::Record;
    p.kernel = "fft";
    p.cores = 2;
    p.scale = 1;
    p.deps = true;
    p.outFile = path;
    CancelToken token;
    const JobOutcome out = runJob(p, token);
    EXPECT_TRUE(out.ok) << out.message;
    return path;
}

// --- the soak ---------------------------------------------------------

TEST_F(ServeTest, SoakEightClientsMixedJobsNoLostOrDupResponses)
{
    const long rssBefore = maxRssKib();
    const std::string probe = makeProbeLog("soak");

    Server::Options opts;
    opts.sched.executors = 4;
    startServer(opts);

    constexpr int kClients = 8;
    constexpr int kJobsPerClient = 25; // 200 total
    std::mutex mu;
    std::map<std::string, int> terminals; // tag -> terminal count
    std::map<std::string, int> outcomes;  // event name histogram
    std::atomic<int> failures{0};

    auto clientBody = [&](int c) {
        Client client = connect();
        ASSERT_TRUE(client.connected());
        const std::string tenant = "client" + std::to_string(c);
        for (int i = 0; i < kJobsPerClient; ++i) {
            const std::string tag =
                "c" + std::to_string(c) + "-" + std::to_string(i);
            std::string req;
            const std::string common =
                ",\"tenant\":\"" + tenant +
                "\",\"weight\":" + std::to_string(c % 3 + 1) +
                ",\"tag\":\"" + tag + "\"}";
            switch (i % 8) {
              case 0:
                req = R"({"op":"record","kernel":"fft","cores":2)" +
                      common;
                break;
              case 1:
              case 2:
              case 3:
                req = R"({"op":"stats","file":)" + jsonQuote(probe) +
                      common;
                break;
              case 4:
              case 5:
                req = R"({"op":"verify","file":)" + jsonQuote(probe) +
                      common;
                break;
              default:
                req = R"({"op":"replay","jobs":2,"file":)" +
                      jsonQuote(probe) + common;
                break;
            }
            std::string error;
            ASSERT_TRUE(client.sendLine(req, error)) << error;
            auto ack = client.readLine(error, 120.0);
            ASSERT_TRUE(ack.has_value()) << error;
            const Json ackEv = parseEvent(*ack);
            ASSERT_EQ(ackEv.get("event").asString(), "accepted")
                << *ack;
            ASSERT_EQ(ackEv.get("tag").asString(), tag);
            const auto job =
                static_cast<std::uint64_t>(ackEv.get("job").asInt());
            std::vector<std::string> transcript;
            auto terminal =
                client.awaitTerminal(job, transcript, error, 240.0);
            ASSERT_TRUE(terminal.has_value())
                << tag << ": " << error;
            const Json ev = parseEvent(*terminal);
            if (ev.get("event").asString() != "completed")
                ++failures;
            // The lifecycle must have streamed a running event for
            // this job before the terminal one.
            bool sawRunning = false;
            for (const auto &line : transcript) {
                const Json t = parseEvent(line);
                sawRunning |= t.get("event").asString() == "running" &&
                              eventJobId(t) == job;
            }
            EXPECT_TRUE(sawRunning) << tag;
            std::lock_guard lock(mu);
            ++terminals[ev.get("tag").asString()];
            ++outcomes[ev.get("event").asString()];
        }
    };

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back(clientBody, c);
    for (auto &t : clients)
        t.join();

    // Zero lost, zero duplicated: every tag exactly one terminal.
    EXPECT_EQ(terminals.size(),
              static_cast<std::size_t>(kClients * kJobsPerClient));
    for (const auto &[tag, count] : terminals)
        EXPECT_EQ(count, 1) << tag;
    EXPECT_EQ(outcomes["completed"], kClients * kJobsPerClient);
    EXPECT_EQ(failures.load(), 0);

    if (!kUnderSanitizer) {
        const long growthKib = maxRssKib() - rssBefore;
        EXPECT_LT(growthKib, 1024L * 1024L)
            << "soak grew RSS by " << growthKib << " KiB";
    }
    ::unlink(probe.c_str());
}

// --- admission control + cancellation ---------------------------------

TEST_F(ServeTest, QuotaCapacityAndCancellationUnderBurst)
{
    const std::string probe = makeProbeLog("burst");
    Server::Options opts;
    opts.queue.capacity = 4;
    opts.queue.tenantQuota = 2;
    opts.sched.executors = 1;
    startServer(opts);

    Client client = connect();
    std::string error;
    std::vector<std::string> seen;

    // A long job pins the single executor, so everything submitted
    // after it stays *queued* — where capacity and quota apply.
    ASSERT_TRUE(client.sendLine(
        R"({"op":"record","kernel":"fft","cores":2,"scale":32,)"
        R"("tenant":"longco","tag":"long"})",
        error));
    auto acc = pumpUntil(
        client,
        [](const Json &e) {
            return e.get("event").asString() == "accepted";
        },
        seen, 30.0);
    ASSERT_TRUE(acc.has_value());
    const auto longId =
        static_cast<std::uint64_t>(parseEvent(*acc).get("job").asInt());
    ASSERT_TRUE(pumpUntil(
                    client,
                    [&](const Json &e) {
                        return e.get("event").asString() == "running" &&
                               eventJobId(e) == longId;
                    },
                    seen, 30.0)
                    .has_value());

    auto submitStats = [&](const std::string &tenant,
                           const std::string &tag) -> Json {
        EXPECT_TRUE(client.sendLine(R"({"op":"stats","file":)" +
                                        jsonQuote(probe) +
                                        ",\"tenant\":\"" + tenant +
                                        "\",\"tag\":\"" + tag + "\"}",
                                    error))
            << error;
        auto ack = pumpUntil(
            client,
            [](const Json &e) {
                const std::string &ev = e.get("event").asString();
                return ev == "accepted" || ev == "rejected";
            },
            seen, 30.0);
        EXPECT_TRUE(ack.has_value());
        return ack ? parseEvent(*ack) : Json();
    };

    // alice: quota 2 -> 2 accepted, then typed QUOTA_EXCEEDED.
    std::vector<std::uint64_t> aliceIds;
    int aliceQuotaRejects = 0;
    for (int i = 0; i < 6; ++i) {
        const Json ack =
            submitStats("alice", "a" + std::to_string(i));
        if (ack.get("event").asString() == "accepted")
            aliceIds.push_back(
                static_cast<std::uint64_t>(ack.get("job").asInt()));
        else {
            EXPECT_EQ(ack.get("error").asString(), "QUOTA_EXCEEDED");
            ++aliceQuotaRejects;
        }
    }
    EXPECT_EQ(aliceIds.size(), 2u);
    EXPECT_EQ(aliceQuotaRejects, 4);

    // bob: 2 more fit (quota), then the global capacity of 4 is hit.
    std::vector<std::uint64_t> bobIds;
    int bobFullRejects = 0;
    for (int i = 0; i < 3; ++i) {
        const Json ack = submitStats("bob", "b" + std::to_string(i));
        if (ack.get("event").asString() == "accepted")
            bobIds.push_back(
                static_cast<std::uint64_t>(ack.get("job").asInt()));
        else {
            EXPECT_EQ(ack.get("error").asString(), "QUEUE_FULL");
            ++bobFullRejects;
        }
    }
    EXPECT_EQ(bobIds.size(), 2u);
    EXPECT_EQ(bobFullRejects, 1);

    // Cancel a *queued* job: immediate cancel_ok + cancelled(cancel).
    ASSERT_TRUE(client.sendLine(
        R"({"op":"cancel","job":)" + std::to_string(aliceIds[0]) + "}",
        error));
    ASSERT_TRUE(pumpUntil(
                    client,
                    [](const Json &e) {
                        return e.get("event").asString() ==
                               "cancel_ok";
                    },
                    seen, 30.0)
                    .has_value());

    // Cancel the *running* long job: its token fires and the runner
    // unwinds cooperatively.
    ASSERT_TRUE(client.sendLine(
        R"({"op":"cancel","job":)" + std::to_string(longId) + "}",
        error));

    // Everything still admitted must reach exactly one terminal state:
    // long + aliceIds[0] cancelled, the other three completed.
    std::map<std::uint64_t, std::string> expect;
    expect[longId] = "cancelled";
    expect[aliceIds[0]] = "cancelled";
    expect[aliceIds[1]] = "completed";
    expect[bobIds[0]] = "completed";
    expect[bobIds[1]] = "completed";
    std::map<std::uint64_t, std::string> got;
    while (got.size() < expect.size()) {
        auto line = pumpUntil(
            client,
            [](const Json &e) { return eventIsTerminal(e); }, seen,
            120.0);
        ASSERT_TRUE(line.has_value()) << "lost a terminal event";
        const Json ev = parseEvent(*line);
        const std::uint64_t id = eventJobId(ev);
        ASSERT_EQ(got.count(id), 0u)
            << "duplicated terminal for job " << id;
        got[id] = ev.get("event").asString();
        if (got[id] == "cancelled") {
            EXPECT_EQ(ev.get("reason").asString(), "cancel") << *line;
        }
    }
    EXPECT_EQ(got, expect);
    ::unlink(probe.c_str());
}

TEST_F(ServeTest, PerJobTimeoutCancelsWithTimeoutReason)
{
    startServer(Server::Options{});
    Client client = connect();
    std::string error;
    std::vector<std::string> seen;
    ASSERT_TRUE(client.sendLine(
        R"({"op":"record","kernel":"fft","cores":2,"scale":32,)"
        R"("timeout":0.05,"tag":"doomed"})",
        error));
    auto terminal = pumpUntil(
        client,
        [](const Json &e) { return eventIsTerminal(e); }, seen, 60.0);
    ASSERT_TRUE(terminal.has_value());
    const Json ev = parseEvent(*terminal);
    EXPECT_EQ(ev.get("event").asString(), "cancelled") << *terminal;
    EXPECT_EQ(ev.get("reason").asString(), "timeout") << *terminal;
}

// --- wire robustness --------------------------------------------------

TEST_F(ServeTest, MalformedLinesGetTypedRejectionsAndServerSurvives)
{
    Server::Options opts;
    opts.maxLineBytes = 4096;
    startServer(opts);
    Client client = connect();
    std::string error;
    const std::string garbage[] = {
        "not json at all",
        "{\"op\":\"nope\"}",
        "{\"op\":\"record\"}",
        "[1,2,3]",
        "{\"op\":\"record\",\"kernel\":\"fft\",\"cores\":-4}",
        std::string(64, '{'),
    };
    for (const std::string &line : garbage) {
        ASSERT_TRUE(client.sendLine(line, error)) << error;
        auto resp = client.readLine(error, 30.0);
        ASSERT_TRUE(resp.has_value()) << error;
        const Json ev = parseEvent(*resp);
        EXPECT_EQ(ev.get("event").asString(), "rejected") << *resp;
        EXPECT_EQ(ev.get("error").asString(), "BAD_REQUEST") << *resp;
    }
    // Still alive and well-behaved afterwards.
    ASSERT_TRUE(client.sendLine(R"({"op":"ping"})", error));
    auto pong = client.readLine(error, 30.0);
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(parseEvent(*pong).get("event").asString(), "pong");

    // An oversized line is rejected and the connection closed; the
    // server itself keeps serving new connections.
    ASSERT_TRUE(
        client.sendLine(std::string(2 * 4096, 'x'), error));
    auto reject = client.readLine(error, 30.0);
    if (reject) {
        EXPECT_EQ(parseEvent(*reject).get("event").asString(),
                  "rejected");
    }
    Client fresh = connect();
    ASSERT_TRUE(fresh.sendLine(R"({"op":"ping"})", error));
    auto pong2 = fresh.readLine(error, 30.0);
    ASSERT_TRUE(pong2.has_value()) << error;
    EXPECT_EQ(parseEvent(*pong2).get("event").asString(), "pong");
}

// --- byte identity: daemon result vs direct in-process run ------------

TEST_F(ServeTest, DaemonResultsAreByteIdenticalToDirectRuns)
{
    const std::string probe = makeProbeLog("ident");
    startServer(Server::Options{});

    // No tag on these submissions: rawResult() then spans to the
    // envelope's closing brace.
    const std::string requests[] = {
        R"({"op":"record","kernel":"fft","cores":2,"scale":1})",
        R"({"op":"replay","jobs":2,"file":)" + jsonQuote(probe) + "}",
        R"({"op":"verify","file":)" + jsonQuote(probe) + "}",
        R"({"op":"stats","file":)" + jsonQuote(probe) + "}",
    };
    for (const std::string &req : requests) {
        Client client = connect();
        std::string error;
        ASSERT_TRUE(client.sendLine(req, error)) << error;
        auto ack = client.readLine(error, 60.0);
        ASSERT_TRUE(ack.has_value()) << error;
        const auto job = static_cast<std::uint64_t>(
            parseEvent(*ack).get("job").asInt());
        std::vector<std::string> transcript;
        auto terminal =
            client.awaitTerminal(job, transcript, error, 240.0);
        ASSERT_TRUE(terminal.has_value()) << req << ": " << error;
        ASSERT_EQ(parseEvent(*terminal).get("event").asString(),
                  "completed")
            << *terminal;

        // Re-run the identical params in-process: the daemon's result
        // bytes must match exactly.
        auto parsed = parseRequest(req, error);
        ASSERT_TRUE(parsed.has_value()) << error;
        CancelToken token;
        const JobOutcome direct = runJob(parsed->params, token);
        ASSERT_TRUE(direct.ok) << direct.message;
        EXPECT_EQ(rawResult(*terminal), direct.resultJson) << req;
    }
    ::unlink(probe.c_str());
}

// --- submit-and-hangup ------------------------------------------------

TEST_F(ServeTest, SubmitAndHangupStillAdmitsBufferedRequest)
{
    const std::string probe = makeProbeLog("hangup");
    startServer(Server::Options{});

    // Write the request and close immediately: the data and the FIN
    // usually arrive in the same poll wake, and the server must parse
    // the buffered line anyway — fire-and-forget is legal.
    {
        Client client = connect();
        std::string error;
        ASSERT_TRUE(client.sendLine(R"({"op":"stats","file":)" +
                                        jsonQuote(probe) +
                                        R"(,"tag":"fire-and-forget"})",
                                    error))
            << error;
        client.close();
    }

    // Observable through a second connection: the job was admitted
    // (not silently dropped) and runs to completion.
    Client monitor = connect();
    std::string error;
    bool done = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    std::int64_t admitted = 0;
    while (!done && std::chrono::steady_clock::now() < deadline) {
        ASSERT_TRUE(monitor.sendLine(R"({"op":"status"})", error))
            << error;
        auto line = monitor.readLine(error, 5.0);
        ASSERT_TRUE(line.has_value()) << error;
        const Json e = parseEvent(*line);
        admitted = e.get("server").get("queue").get("admitted").asInt();
        const Json &sched = e.get("server").get("scheduler");
        done = sched.get("completed").asInt() +
                   sched.get("failed").asInt() >=
               1;
        if (!done)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(done) << "hung-up submit never completed";
    EXPECT_EQ(admitted, 1);
    ::unlink(probe.c_str());
}

// --- shutdown cannot hang on a client that stopped reading ------------

TEST_F(ServeTest, ShutdownIsBoundedWhenAClientStopsReading)
{
    const std::string probe = makeProbeLog("deaf");
    Server::Options opts;
    opts.queue.capacity = 4000;
    opts.queue.tenantQuota = 4000;
    opts.sched.executors = 2;
    opts.flushTimeoutMs = 300;
    startServer(opts);

    // A client that submits a pile of jobs and never reads a byte:
    // its events fill the socket buffer and then the server-side
    // outbuf, which used to wedge drain-shutdown forever.
    Client deaf = connect();
    std::string error;
    const std::string req = R"({"op":"stats","file":)" +
                            jsonQuote(probe) + R"(,"tag":")" +
                            std::string(120, 'x') + R"("})";
    constexpr int kJobs = 1000;
    for (int i = 0; i < kJobs; ++i)
        ASSERT_TRUE(deaf.sendLine(req, error)) << error;

    // Wait until every job has finished so the only thing shutdown
    // still waits on is the deaf client's unflushed output.
    Client monitor = connect();
    const auto workDeadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(5);
    for (;;) {
        ASSERT_LT(std::chrono::steady_clock::now(), workDeadline)
            << "jobs never finished";
        ASSERT_TRUE(monitor.sendLine(R"({"op":"status"})", error))
            << error;
        auto line = monitor.readLine(error, 5.0);
        ASSERT_TRUE(line.has_value()) << error;
        const Json e = parseEvent(*line);
        const Json &sched = e.get("server").get("scheduler");
        if (sched.get("completed").asInt() +
                sched.get("failed").asInt() +
                sched.get("cancelled").asInt() >=
            kJobs)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    const auto t0 = std::chrono::steady_clock::now();
    server_->requestStop(/*drain=*/true);
    thread_.join();
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(elapsed, std::chrono::seconds(30))
        << "drain-shutdown stalled on an unread connection";
    EXPECT_TRUE(serverError_.empty()) << serverError_;
    server_.reset();
    ::unlink(probe.c_str());
}

// --- queued descriptors stay cheap ------------------------------------

TEST_F(ServeTest, ThousandsOfQueuedJobsStayDescriptorSized)
{
    const std::string probe = makeProbeLog("depth");
    Server::Options opts;
    opts.queue.capacity = 5000;
    opts.queue.tenantQuota = 5000;
    opts.sched.executors = 1;
    startServer(opts);

    Client client = connect();
    std::string error;
    // Pin the executor so submissions pile up in the queue.
    ASSERT_TRUE(client.sendLine(
        R"({"op":"record","kernel":"fft","cores":2,"scale":32,)"
        R"("tag":"pin"})",
        error));
    std::vector<std::string> seen;
    ASSERT_TRUE(pumpUntil(
                    client,
                    [](const Json &e) {
                        return e.get("event").asString() == "running";
                    },
                    seen, 30.0)
                    .has_value());

    const long rssBefore = maxRssKib();
    constexpr int kQueued = 3000;
    const std::string req = R"({"op":"stats","file":)" +
                            jsonQuote(probe) + R"(,"tag":"q"})";
    for (int i = 0; i < kQueued; ++i)
        ASSERT_TRUE(client.sendLine(req, error)) << error;
    int accepted = 0;
    while (accepted < kQueued) {
        auto line = pumpUntil(
            client,
            [](const Json &e) {
                return e.get("event").asString() == "accepted";
            },
            seen, 60.0);
        ASSERT_TRUE(line.has_value());
        ++accepted;
    }
    if (!kUnderSanitizer) {
        const long growthKib = maxRssKib() - rssBefore;
        EXPECT_LT(growthKib, 64L * 1024L)
            << kQueued << " queued descriptors grew RSS by "
            << growthKib << " KiB";
    }
    // Abort instead of draining 3000 queued stats jobs. Close the
    // client first: 3000 cancelled events would otherwise pile into an
    // outbuf nobody reads, and shutdown waits for flushed connections.
    client.close();
    server_->requestStop(/*drain=*/false);
    thread_.join();
    server_.reset();
    ::unlink(probe.c_str());
}

} // namespace
