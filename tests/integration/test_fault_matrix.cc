/**
 * @file
 * Fault-matrix sweep: record a kernel through the streaming LogWriter
 * while a seeded FaultInjector perturbs each layer in turn, then hold
 * the recording to the robustness contract:
 *
 *  - a zero-fault plan leaves the .rrlog byte-identical to a run with
 *    no injector installed at all;
 *  - transient I/O faults (short writes, EIO, ENOSPC, bounded fsync
 *    failures) are absorbed by retry/resume and are invisible in the
 *    final bytes;
 *  - recorder-observation faults (dropped/delayed snoops, forced
 *    terminations, Snoop Table saturation, signature aliasing) yield a
 *    structurally sound file that either replays bit-exact or fails
 *    replay with a typed ReplayDivergence — never silent corruption of
 *    the container;
 *  - a persistent I/O fault surfaces as LogStoreError kind Io with the
 *    errno attached, and never publishes a file under the final name;
 *  - an injected crash leaves a torn .tmp from which recoverPrefix()
 *    salvages a per-core interval prefix of the clean recording that
 *    replays divergence-free after a consistentCut();
 *  - a log-size budget produces a partial-flagged, bounded, replayable
 *    prefix instead of an unbounded file or an abort.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <fstream>

#include <unistd.h>
#include <memory>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "rnr/divergence.hh"
#include "rnr/logstore.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "sim/faultinject.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

constexpr std::uint32_t kCores = 2;
constexpr const char *kKernel = "fft";
constexpr std::size_t kChunkBytes = 256; // many small chunks

/** Uninstalls any injector this test installed, even on failure. */
struct InjectorGuard
{
    explicit InjectorGuard(const std::string &spec)
    {
        if (!spec.empty())
            sim::FaultInjector::install(sim::FaultPlan::parse(spec));
    }
    ~InjectorGuard() { sim::FaultInjector::uninstall(); }
};

rnr::RecordingMeta
metaFor(sim::RecorderMode mode, std::uint64_t scale)
{
    rnr::RecordingMeta meta;
    meta.kernel = kKernel;
    meta.cores = kCores;
    meta.scale = scale;
    meta.intensity = workloads::WorkloadParams{}.intensity;
    meta.workloadSeed = workloads::WorkloadParams{}.seed;
    meta.machineSeed = sim::MachineConfig{}.seed;
    meta.mode = mode;
    meta.intervalCap = 0;
    meta.deps = false;
    return meta;
}

struct Recorded
{
    machine::RecordingResult rec;
    rnr::RecordingSummary summary;
    std::unique_ptr<rnr::LogWriter> writer; ///< kept for crash cases
    bool finished = false;
};

/**
 * Record kKernel under whatever injector is currently installed,
 * streaming to @p path. @p finish false leaves the writer open (crash
 * cases finish — or fail to — in the caller).
 */
Recorded
recordKernel(const std::string &path, sim::RecorderMode mode,
             bool finish = true, std::uint64_t scale = 1)
{
    workloads::WorkloadParams wp;
    wp.numThreads = kCores;
    wp.scale = scale;
    auto w = workloads::buildKernel(kKernel, wp);

    sim::MachineConfig cfg;
    cfg.numCores = kCores;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0] = {mode, 0};

    Recorded out;
    rnr::WriterOptions opts;
    opts.chunkTargetBytes = kChunkBytes;
    out.writer = std::make_unique<rnr::LogWriter>(
        path, metaFor(mode, scale), opts);

    machine::Machine m(cfg, w.program, policies);
    rnr::LogWriter *writer = out.writer.get();
    m.setIntervalSink(0, [writer](sim::CoreId c,
                                  const rnr::IntervalRecord &iv) {
        writer->append(c, iv);
    });
    out.rec = m.run(500'000'000ULL);

    out.summary.totalInstructions = out.rec.totalInstructions;
    out.summary.cycles = out.rec.cycles;
    out.summary.memoryFingerprint = out.rec.memoryFingerprint;
    for (sim::CoreId c = 0; c < kCores; ++c)
        out.summary.cores.push_back(rnr::CoreReplaySummary{
            out.rec.logs[0][c].intervals.size(),
            out.rec.cores[c].retiredInstructions,
            out.rec.cores[c].retiredLoads,
            out.rec.cores[c].loadValueHash});
    if (finish) {
        out.writer->finish(out.summary);
        out.finished = true;
    }
    return out;
}

std::vector<std::uint8_t>
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

bool
fileExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return in.is_open();
}

/**
 * Replay @p logs from the persisted metadata against a fresh machine's
 * initial memory. @return the per-core load-value hashes and counts.
 */
struct ReplayOutcome
{
    bool diverged = false;
    std::string divergence;
    std::uint64_t instructions = 0;
    std::uint64_t memoryFingerprint = 0;
    std::vector<std::uint64_t> hashes;
    std::vector<std::uint64_t> loads;
};

ReplayOutcome
replayLogs(const rnr::RecordingMeta &meta, std::vector<rnr::CoreLog> logs)
{
    workloads::WorkloadParams wp;
    wp.numThreads = meta.cores;
    wp.scale = meta.scale;
    wp.intensity = meta.intensity;
    wp.seed = meta.workloadSeed;
    auto w = workloads::buildKernel(meta.kernel, wp);

    sim::MachineConfig cfg;
    cfg.numCores = meta.cores;
    cfg.seed = meta.machineSeed;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0] = {meta.mode, meta.intervalCap};
    machine::Machine fresh(cfg, w.program, policies);

    std::vector<rnr::CoreLog> patched;
    for (const auto &log : logs)
        patched.push_back(rnr::patch(log));

    ReplayOutcome out;
    out.hashes.assign(meta.cores, 0);
    out.loads.assign(meta.cores, 0);
    rnr::Replayer rep(w.program, std::move(patched),
                      fresh.initialMemory().clone());
    rep.setLoadHook([&](sim::CoreId c, std::uint64_t v) {
        out.hashes[c] = machine::mixLoadValue(out.hashes[c], v);
        ++out.loads[c];
    });
    try {
        const auto res = rep.run();
        out.instructions = res.instructions;
        out.memoryFingerprint = res.memory.fingerprint();
    } catch (const rnr::ReplayDivergence &d) {
        out.diverged = true;
        out.divergence = d.report().format();
    }
    return out;
}

std::string
tmpPathFor(const std::string &name)
{
    return ::testing::TempDir() + "rr_fault_matrix_" + name + ".rrlog";
}

TEST(FaultMatrix, ZeroFaultPlanIsByteIdenticalToNoInjector)
{
    const std::string clean_path = tmpPathFor("zero_clean");
    const std::string fault_path = tmpPathFor("zero_fault");
    {
        InjectorGuard guard("");
        recordKernel(clean_path, sim::RecorderMode::Opt);
    }
    {
        // Installed but inert: a seed alone arms no clause, and
        // zero-rate clauses never draw, so the recording cannot shift.
        InjectorGuard guard("seed=9");
        recordKernel(fault_path, sim::RecorderMode::Opt);
    }
    const auto clean = fileBytes(clean_path);
    const auto faulty = fileBytes(fault_path);
    ASSERT_FALSE(clean.empty());
    EXPECT_EQ(clean, faulty);
    std::remove(clean_path.c_str());
    std::remove(fault_path.c_str());
}

class TransientIoFaults : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TransientIoFaults, AreAbsorbedAndInvisibleInTheFinalBytes)
{
    // Per-process suffix: the parameterized instances run concurrently
    // under `ctest -j` and must not clobber each other's files.
    const std::string uniq = std::to_string(
        static_cast<unsigned long>(::getpid()));
    const std::string clean_path = tmpPathFor("io_clean_" + uniq);
    const std::string fault_path = tmpPathFor("io_fault_" + uniq);
    {
        InjectorGuard guard("");
        recordKernel(clean_path, sim::RecorderMode::Opt);
    }
    std::uint64_t injected = 0;
    {
        InjectorGuard guard(GetParam());
        Recorded r = recordKernel(fault_path, sim::RecorderMode::Opt);
        const sim::StatSet &fs = sim::FaultInjector::get()->stats();
        injected = fs.counterValue("short_writes") +
                   fs.counterValue("io_errors") +
                   fs.counterValue("enospc_errors") +
                   fs.counterValue("sync_failures");
        // The writer retried/resumed (visible in its own counters).
        EXPECT_EQ(r.writer->stats().counterValue("io_short_writes") +
                      r.writer->stats().counterValue("io_retries") +
                      r.writer->stats().counterValue("sync_retries"),
                  injected);
    }
    // The plan must have actually fired for this sweep to mean much.
    EXPECT_GT(injected, 0u) << GetParam();
    EXPECT_EQ(fileBytes(clean_path), fileBytes(fault_path))
        << GetParam();
    std::remove(clean_path.c_str());
    std::remove(fault_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Plans, TransientIoFaults,
    ::testing::Values("short-write=0.5", "io-error=0.3", "enospc=0.25",
                      "fsync-fail=3",
                      "short-write=0.3,io-error=0.1,enospc=0.05,"
                      "fsync-fail=1"),
    [](const auto &info) {
        return "plan" + std::to_string(info.index);
    });

struct RecorderFaultCase
{
    const char *name;
    const char *spec;
    sim::RecorderMode mode;
};

class RecorderFaults
    : public ::testing::TestWithParam<RecorderFaultCase>
{
};

TEST_P(RecorderFaults, YieldSoundFilesThatReplayExactOrDivergeTyped)
{
    const RecorderFaultCase &fc = GetParam();
    const std::string path = tmpPathFor(fc.name);
    Recorded r = [&] {
        InjectorGuard guard(fc.spec);
        return recordKernel(path, fc.mode);
    }();

    // Whatever the fault did to the recorded *content*, the container
    // must be structurally sound.
    rnr::LogReader reader(path);
    EXPECT_TRUE(reader.verify().empty()) << fc.spec;
    std::vector<rnr::CoreLog> logs = reader.readAll();
    ASSERT_EQ(logs.size(), kCores);

    // The robustness dichotomy: bit-exact replay, or a typed
    // divergence report — never a silently wrong result.
    ReplayOutcome out = replayLogs(reader.meta(), std::move(logs));
    if (out.diverged) {
        EXPECT_NE(out.divergence.find("replay divergence at core"),
                  std::string::npos);
    } else {
        const rnr::RecordingSummary summary = reader.summary();
        EXPECT_EQ(out.instructions, summary.totalInstructions)
            << fc.spec;
        EXPECT_EQ(out.memoryFingerprint, summary.memoryFingerprint)
            << fc.spec;
        for (sim::CoreId c = 0; c < kCores; ++c) {
            EXPECT_EQ(out.hashes[c], summary.cores[c].loadValueHash)
                << fc.spec << " core " << c;
            EXPECT_EQ(out.loads[c], summary.cores[c].retiredLoads)
                << fc.spec << " core " << c;
        }
    }
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Plans, RecorderFaults,
    ::testing::Values(
        RecorderFaultCase{"drop", "drop-snoop=0.02",
                          sim::RecorderMode::Opt},
        RecorderFaultCase{"delay", "delay-snoop=0.05",
                          sim::RecorderMode::Opt},
        RecorderFaultCase{"term", "force-term=0.005",
                          sim::RecorderMode::Base},
        RecorderFaultCase{"saturate", "st-saturate=2",
                          sim::RecorderMode::Opt},
        RecorderFaultCase{"alias", "alias-sig=4",
                          sim::RecorderMode::Opt},
        RecorderFaultCase{"combo",
                          "drop-snoop=0.02,delay-snoop=0.05,"
                          "force-term=0.005",
                          sim::RecorderMode::Opt}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(FaultMatrix, SnoopTableSaturationDowngradesOptToBase)
{
    const std::string path = tmpPathFor("downgrade");
    {
        InjectorGuard guard("st-saturate=1");
        recordKernel(path, sim::RecorderMode::Opt);
        // Every core's recorder saturates immediately and must fall
        // back to Base logging (counted per recorder).
        EXPECT_GE(sim::FaultInjector::get()->stats().counterValue(
                      "opt_base_downgrades"),
                  1u);
    }
    std::remove(path.c_str());
}

TEST(FaultMatrix, PersistentSyncFailureIsATypedIoError)
{
    const std::string path = tmpPathFor("eio");
    InjectorGuard guard("fsync-fail=1000000");
    try {
        recordKernel(path, sim::RecorderMode::Opt);
        FAIL() << "expected LogStoreError";
    } catch (const rnr::LogStoreError &e) {
        EXPECT_EQ(e.kind(), rnr::LogErrorKind::Io);
        EXPECT_EQ(e.osError(), EIO);
        // The message names the failing site and the retry budget.
        EXPECT_NE(std::string(e.what()).find("after"),
                  std::string::npos);
    }
    // The fault can never publish a file under the final name.
    EXPECT_FALSE(fileExists(path));
    std::remove((path + ".tmp").c_str());
}

TEST(FaultMatrix, CrashTornFileSalvagesToAReplayableCleanPrefix)
{
    const std::string clean_path = tmpPathFor("crash_clean");
    const std::string crash_path = tmpPathFor("crash");

    constexpr std::uint64_t kScale = 16; // enough data to tear mid-file
    Recorded clean = [&] {
        InjectorGuard guard("");
        return recordKernel(clean_path, sim::RecorderMode::Opt, true,
                            kScale);
    }();
    const std::uint64_t clean_bytes = fileBytes(clean_path).size();
    ASSERT_GT(clean_bytes, 4 * kChunkBytes)
        << "kernel too small to tear meaningfully";

    // Tear the identical recording halfway through.
    const std::string spec =
        "crash-at=" + std::to_string(clean_bytes / 2);
    bool crashed = false;
    {
        InjectorGuard guard(spec);
        try {
            Recorded r = recordKernel(crash_path,
                                      sim::RecorderMode::Opt, true,
                                      kScale);
            (void)r;
        } catch (const rnr::LogStoreError &e) {
            crashed = true;
            EXPECT_EQ(e.kind(), rnr::LogErrorKind::Crash);
            EXPECT_NE(std::string(e.what()).find("injected crash"),
                      std::string::npos);
        }
    }
    ASSERT_TRUE(crashed);
    // Only the torn .tmp exists; the final name was never published.
    EXPECT_FALSE(fileExists(crash_path));
    const std::string torn = crash_path + ".tmp";
    ASSERT_TRUE(fileExists(torn));

    rnr::LogReader reader(torn);
    rnr::RecoveryResult rec = reader.recoverPrefix();
    EXPECT_FALSE(rec.cleanEnd);
    EXPECT_GE(rec.salvagedChunks, 1u);
    EXPECT_GT(rec.salvagedIntervals, 0u);
    ASSERT_EQ(rec.logs.size(), kCores);

    // Each salvaged core log is a *prefix* of the clean recording —
    // every salvaged interval is known-good, none is invented.
    for (sim::CoreId c = 0; c < kCores; ++c) {
        const auto &salvaged = rec.logs[c].intervals;
        const auto &full = clean.rec.logs[0][c].intervals;
        ASSERT_LE(salvaged.size(), full.size()) << "core " << c;
        for (std::size_t i = 0; i < salvaged.size(); ++i) {
            // The termination cycle is reporting-only and not
            // serialized, so a salvaged interval carries cycle 0.
            rnr::IntervalRecord expect = full[i];
            expect.cycle = 0;
            EXPECT_EQ(salvaged[i], expect)
                << "core " << c << " interval " << i;
        }
    }

    // After the consistent cut the prefix replays divergence-free.
    const std::uint64_t cut =
        rnr::consistentCut(rec.logs, rec.coreTruncated);
    EXPECT_GT(cut, 0u);
    ReplayOutcome out = replayLogs(reader.meta(), std::move(rec.logs));
    EXPECT_FALSE(out.diverged) << out.divergence;
    EXPECT_GT(out.instructions, 0u);
    EXPECT_LT(out.instructions, clean.summary.totalInstructions);

    std::remove(clean_path.c_str());
    std::remove(torn.c_str());
}

TEST(FaultMatrix, BudgetYieldsABoundedPartialReplayablePrefix)
{
    const std::string clean_path = tmpPathFor("budget_clean");
    const std::string budget_path = tmpPathFor("budget");

    Recorded clean = [&] {
        InjectorGuard guard("");
        return recordKernel(clean_path, sim::RecorderMode::Opt);
    }();
    const std::uint64_t clean_bytes = fileBytes(clean_path).size();
    const std::uint64_t budget = clean_bytes / 2;

    Recorded r = [&] {
        InjectorGuard guard("budget=" + std::to_string(budget));
        return recordKernel(budget_path, sim::RecorderMode::Opt);
    }();
    ASSERT_TRUE(r.finished);
    EXPECT_GT(r.writer->stats().counterValue("intervals_dropped_budget"),
              0u);
    EXPECT_EQ(r.writer->stats().counterValue("budget_exceeded"), 1u);

    rnr::LogReader reader(budget_path);
    EXPECT_TRUE(reader.partial());
    EXPECT_TRUE(reader.verify().empty());

    // Bounded: the file keeps to the budget (plus the Summary + End
    // trailer slack the projection reserves).
    EXPECT_LE(fileBytes(budget_path).size(), budget + 1024);

    // And the kept prefix replays divergence-free after the cut.
    rnr::RecoveryResult rec = reader.recoverPrefix();
    EXPECT_TRUE(rec.cleanEnd);
    rnr::consistentCut(rec.logs, rec.coreTruncated);
    ReplayOutcome out = replayLogs(reader.meta(), std::move(rec.logs));
    EXPECT_FALSE(out.diverged) << out.divergence;
    EXPECT_GT(out.instructions, 0u);

    std::remove(clean_path.c_str());
    std::remove(budget_path.c_str());
}

} // namespace
