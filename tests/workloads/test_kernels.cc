#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;
using workloads::WorkloadParams;

TEST(Kernels, RegistryIsComplete)
{
    const auto &names = workloads::kernelNames();
    EXPECT_EQ(names.size(), 10u);
    WorkloadParams p;
    p.numThreads = 2;
    p.scale = 1;
    for (const auto &name : names) {
        auto w = workloads::buildKernel(name, p);
        EXPECT_EQ(w.name, name);
        EXPECT_GT(w.program.size(), 10u) << name;
        EXPECT_EQ(w.numThreads, 2u);
    }
}

TEST(KernelsDeathTest, UnknownNameIsFatal)
{
    WorkloadParams p;
    EXPECT_EXIT(workloads::buildKernel("nope", p),
                testing::ExitedWithCode(1), "unknown");
}

TEST(Kernels, ScaleGrowsWork)
{
    WorkloadParams small;
    small.numThreads = 2;
    small.scale = 1;
    WorkloadParams big = small;
    big.scale = 2;
    for (const char *name : {"fft", "radix", "cholesky"}) {
        sim::RecorderConfig rc;
        sim::MachineConfig cfg;
        cfg.numCores = 2;
        machine::Machine m1(cfg, workloads::buildKernel(name, small).program,
                            {rc});
        machine::Machine m2(cfg, workloads::buildKernel(name, big).program,
                            {rc});
        auto r1 = m1.run(100'000'000ULL);
        auto r2 = m2.run(100'000'000ULL);
        EXPECT_GT(r2.totalInstructions, r1.totalInstructions) << name;
    }
}

/** Every kernel must run to completion on various thread counts. */
class KernelRunTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(KernelRunTest, RunsToCompletion)
{
    const auto &[name, threads] = GetParam();
    WorkloadParams p;
    p.numThreads = threads;
    p.scale = 1;
    auto w = workloads::buildKernel(name, p);

    sim::MachineConfig cfg;
    cfg.numCores = threads;
    sim::RecorderConfig rc;
    machine::Machine m(cfg, w.program, {rc});
    auto res = m.run(200'000'000ULL);
    EXPECT_GT(res.totalInstructions, 0u);
    for (const auto &core : res.cores)
        EXPECT_GT(core.retiredInstructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelRunTest,
    ::testing::Combine(::testing::ValuesIn(workloads::kernelNames()),
                       ::testing::Values(2, 4)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name + "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(Kernels, RadixActuallySorts)
{
    // The scatter output must be a bucket-ordered permutation of the
    // keys: every key lands in its bucket's contiguous range.
    WorkloadParams p;
    p.numThreads = 2;
    p.scale = 1;
    auto w = workloads::buildKernel("radix", p);
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    sim::RecorderConfig rc;
    machine::Machine m(cfg, w.program, {rc});
    auto res = m.run(200'000'000ULL);
    (void)res;
    const std::uint64_t n = w.program.initialData.size(); // the keys
    const sim::Addr out_base = w.regions.at("out");
    std::uint64_t prev_bucket = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t v = m.memory().read64(out_base + i * 8);
        const std::uint64_t b = v & 15;
        EXPECT_GE(b, prev_bucket) << "output not bucket-sorted at " << i;
        prev_bucket = b;
    }
}

TEST(Kernels, DeterministicAcrossRuns)
{
    // Same program, same config: bit-identical execution.
    WorkloadParams p;
    p.numThreads = 4;
    p.scale = 1;
    for (const char *name : {"fft", "barnes", "water-sp"}) {
        auto w = workloads::buildKernel(name, p);
        sim::MachineConfig cfg;
        cfg.numCores = 4;
        sim::RecorderConfig rc;
        machine::Machine m1(cfg, w.program, {rc});
        machine::Machine m2(cfg, w.program, {rc});
        auto r1 = m1.run(200'000'000ULL);
        auto r2 = m2.run(200'000'000ULL);
        EXPECT_EQ(r1.cycles, r2.cycles) << name;
        EXPECT_EQ(r1.memoryFingerprint, r2.memoryFingerprint) << name;
        for (std::size_t c = 0; c < r1.cores.size(); ++c)
            EXPECT_EQ(r1.cores[c].loadValueHash, r2.cores[c].loadValueHash)
                << name << " core " << c;
    }
}

} // namespace
