#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "workloads/runtime.hh"

namespace
{

using namespace rr;
using workloads::KernelBuilder;
using workloads::WorkloadParams;

sim::RecorderConfig
optPolicy()
{
    sim::RecorderConfig rc;
    rc.mode = sim::RecorderMode::Opt;
    return rc;
}

machine::RecordingResult
runOn(const workloads::Workload &w)
{
    sim::MachineConfig cfg;
    cfg.numCores = w.numThreads;
    machine::Machine m(cfg, w.program, {optPolicy()});
    return m.run(50'000'000ULL);
}

TEST(KernelBuilder, AllocGivesLineSeparatedRegions)
{
    WorkloadParams p;
    p.numThreads = 2;
    KernelBuilder k("t", p);
    const sim::Addr a = k.alloc("a", 1);
    const sim::Addr b = k.alloc("b", 1);
    EXPECT_EQ(a % sim::kLineBytes, 0u);
    EXPECT_EQ(b % sim::kLineBytes, 0u);
    EXPECT_FALSE(sim::sameLine(a, b));
    EXPECT_EQ(k.region("a"), a);
}

TEST(KernelBuilderDeathTest, DuplicateRegionIsFatal)
{
    WorkloadParams p;
    p.numThreads = 1;
    KernelBuilder k("t", p);
    k.alloc("a", 1);
    EXPECT_DEATH(k.alloc("a", 1), "twice");
}

TEST(KernelBuilder, UniqLabelsAreUnique)
{
    WorkloadParams p;
    p.numThreads = 1;
    KernelBuilder k("t", p);
    EXPECT_NE(k.uniq("x"), k.uniq("x"));
}

TEST(Runtime, LockProvidesMutualExclusion)
{
    // 4 threads each do 50 unlocked-unsafe increments of a shared word,
    // but under the lock, so the final count must be exact.
    WorkloadParams p;
    p.numThreads = 4;
    KernelBuilder k("locktest", p);
    auto &a = k.a();
    const sim::Addr lock = k.alloc("lock", 1);
    const sim::Addr counter = k.alloc("counter", 1);
    const int iters = 50;

    k.emitPreamble();
    k.loadImm(10, lock);
    k.loadImm(11, counter);
    a.li(3, iters);
    a.label("loop");
    k.lockAcquire(10);
    a.ld(4, 11, 0);
    a.addi(4, 4, 1);
    a.st(4, 11, 0);
    k.lockRelease(10);
    a.addi(3, 3, -1);
    a.bne(3, 0, "loop");
    a.halt();

    auto w = k.finish();
    auto res = runOn(w);
    (void)res;
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    machine::Machine m(cfg, w.program, {optPolicy()});
    m.run(50'000'000ULL);
    EXPECT_EQ(m.memory().read64(counter),
              static_cast<std::uint64_t>(4 * iters));
}

TEST(Runtime, BarrierSeparatesPhases)
{
    // Each thread writes its slot, barriers, then sums all slots. Every
    // thread must observe every other thread's write.
    WorkloadParams p;
    p.numThreads = 4;
    KernelBuilder k("bartest", p);
    auto &a = k.a();
    const sim::Addr slots = k.alloc("slots", 4 * 4); // line per thread
    const sim::Addr sums = k.alloc("sums", 4 * 4);

    k.emitPreamble();
    k.loadImm(10, slots);
    k.loadImm(11, sums);
    // slots[tid] = tid + 1
    a.slli(3, 1, 5);
    a.add(3, 3, 10);
    a.addi(4, 1, 1);
    a.st(4, 3, 0);
    k.barrier();
    // sum all slots
    a.li(5, 0);
    a.li(6, 0);
    a.label("sum");
    a.slli(3, 6, 5);
    a.add(3, 3, 10);
    a.ld(4, 3, 0);
    a.add(5, 5, 4);
    a.addi(6, 6, 1);
    a.blt(6, 2, "sum");
    // publish my sum
    a.slli(3, 1, 5);
    a.add(3, 3, 11);
    a.st(5, 3, 0);
    a.halt();

    auto w = k.finish();
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    machine::Machine m(cfg, w.program, {optPolicy()});
    m.run(50'000'000ULL);
    for (std::uint32_t t = 0; t < 4; ++t)
        EXPECT_EQ(m.memory().read64(sums + t * 32), 10u) << "thread " << t;
}

TEST(Runtime, BarrierIsReusable)
{
    // Alternating produce/consume over 6 barrier-separated rounds.
    WorkloadParams p;
    p.numThreads = 2;
    KernelBuilder k("barloop", p);
    auto &a = k.a();
    const sim::Addr cell = k.alloc("cell", 1);

    k.emitPreamble();
    k.loadImm(10, cell);
    a.li(3, 0); // round
    a.label("round");
    // Thread 0 writes round+1; thread 1 checks it after the barrier.
    a.bne(1, 0, "wait");
    a.addi(4, 3, 1);
    a.st(4, 10, 0);
    a.label("wait");
    k.barrier();
    a.ld(5, 10, 0);
    a.addi(6, 3, 1);
    a.beq(5, 6, "ok");
    a.li(7, 999); // error marker
    a.label("ok");
    k.barrier();
    a.addi(3, 3, 1);
    a.li(4, 6);
    a.blt(3, 4, "round");
    a.halt();

    auto w = k.finish();
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    machine::Machine m(cfg, w.program, {optPolicy()});
    m.run(50'000'000ULL);
    EXPECT_EQ(m.core(0).archReg(7), 0u);
    EXPECT_EQ(m.core(1).archReg(7), 0u);
}

} // namespace
