#include <gtest/gtest.h>

#include "rnr/log.hh"
#include "sim/rng.hh"

namespace
{

using namespace rr::rnr;

CoreLog
sampleLog()
{
    CoreLog log;
    IntervalRecord iv0;
    iv0.entries.push_back(LogEntry::inorderBlock(10));
    iv0.entries.push_back(LogEntry::reorderedLoad(0x1122334455667788ULL));
    iv0.entries.push_back(LogEntry::inorderBlock(3));
    iv0.cisn = 0;
    iv0.timestamp = 100;
    log.intervals.push_back(iv0);

    IntervalRecord iv1;
    iv1.entries.push_back(
        LogEntry::reorderedStore(0x2000, 0xabcdef, 1));
    iv1.entries.push_back(
        LogEntry::reorderedAtomic(0x3000, 1, 2, 1));
    iv1.entries.push_back(LogEntry::inorderBlock(7));
    iv1.cisn = 1;
    iv1.timestamp = 250;
    log.intervals.push_back(iv1);
    return log;
}

TEST(Log, EntrySizesMatchFormat)
{
    // type tag 3 bits; fields per Figure 6c.
    EXPECT_EQ(LogEntry::inorderBlock(1).sizeBits(), 3u + 32);
    EXPECT_EQ(LogEntry::reorderedLoad(1).sizeBits(), 3u + 64);
    EXPECT_EQ(LogEntry::reorderedStore(1, 1, 1).sizeBits(),
              3u + 48 + 64 + 16);
    EXPECT_EQ(LogEntry::reorderedAtomic(1, 1, 1, 1).sizeBits(),
              3u + 48 + 64 + 64 + 16);
    EXPECT_EQ(LogEntry::patchedStore(1, 1).sizeBits(), 3u + 48 + 64);
    EXPECT_EQ(LogEntry::dummyStore().sizeBits(), 3u);
    EXPECT_EQ(LogEntry::dummyAtomic(1).sizeBits(), 3u + 64);
}

TEST(Log, IntervalSizeIncludesFrame)
{
    IntervalRecord iv;
    iv.entries.push_back(LogEntry::inorderBlock(4));
    // frame = 3 (tag) + 16 (cisn) + 64 (timestamp)
    EXPECT_EQ(iv.sizeBits(), (3u + 32) + (3u + 16 + 64));
}

TEST(Log, StatsAccumulate)
{
    LogStats stats;
    stats.accumulate(sampleLog());
    EXPECT_EQ(stats.intervals, 2u);
    EXPECT_EQ(stats.inorderBlocks, 3u);
    EXPECT_EQ(stats.inorderInstructions, 20u);
    EXPECT_EQ(stats.reorderedLoads, 1u);
    EXPECT_EQ(stats.reorderedStores, 1u);
    EXPECT_EQ(stats.reorderedAtomics, 1u);
    EXPECT_EQ(stats.reordered(), 3u);
    EXPECT_EQ(stats.instructions(), 23u);
    EXPECT_EQ(stats.totalBits, sampleLog().sizeBits());
}

TEST(Log, StatsAddition)
{
    LogStats a, b;
    a.accumulate(sampleLog());
    b.accumulate(sampleLog());
    b += a;
    EXPECT_EQ(b.intervals, 4u);
    EXPECT_EQ(b.reordered(), 6u);
}

TEST(Log, PackUnpackRoundTrip)
{
    const CoreLog log = sampleLog();
    const PackedLog packed = pack(log);
    EXPECT_EQ(packed.bitCount, log.sizeBits() + 1); // +layout bit
    const CoreLog back = unpack(packed);
    ASSERT_EQ(back.intervals.size(), log.intervals.size());
    for (std::size_t i = 0; i < log.intervals.size(); ++i) {
        EXPECT_EQ(back.intervals[i].entries, log.intervals[i].entries);
        EXPECT_EQ(back.intervals[i].cisn, log.intervals[i].cisn);
        EXPECT_EQ(back.intervals[i].timestamp,
                  log.intervals[i].timestamp);
    }
}

TEST(Log, PackUnpackPatchedEntries)
{
    CoreLog log;
    IntervalRecord iv;
    iv.entries.push_back(LogEntry::patchedStore(0x4000, 77));
    iv.entries.push_back(LogEntry::dummyStore());
    iv.entries.push_back(LogEntry::dummyAtomic(88));
    iv.cisn = 0;
    iv.timestamp = 5;
    log.intervals.push_back(iv);
    const CoreLog back = unpack(pack(log));
    EXPECT_EQ(back.intervals[0].entries, log.intervals[0].entries);
}

TEST(Log, RandomizedPackUnpack)
{
    rr::sim::Rng rng(99);
    CoreLog log;
    for (int i = 0; i < 50; ++i) {
        IntervalRecord iv;
        const int n = 1 + static_cast<int>(rng.below(6));
        for (int e = 0; e < n; ++e) {
            switch (rng.below(4)) {
              case 0:
                iv.entries.push_back(
                    LogEntry::inorderBlock(rng.below(100000)));
                break;
              case 1:
                iv.entries.push_back(LogEntry::reorderedLoad(rng.next()));
                break;
              case 2:
                iv.entries.push_back(LogEntry::reorderedStore(
                    rng.next() & 0xffffffffffffULL, rng.next(),
                    1 + static_cast<std::uint32_t>(rng.below(100))));
                break;
              default:
                iv.entries.push_back(LogEntry::reorderedAtomic(
                    rng.next() & 0xffffffffffffULL, rng.next(),
                    rng.next(),
                    1 + static_cast<std::uint32_t>(rng.below(100))));
                break;
            }
        }
        iv.cisn = static_cast<rr::sim::Isn>(i);
        iv.timestamp = rng.next();
        log.intervals.push_back(iv);
    }
    const CoreLog back = unpack(pack(log));
    ASSERT_EQ(back.intervals.size(), log.intervals.size());
    for (std::size_t i = 0; i < log.intervals.size(); ++i)
        EXPECT_EQ(back.intervals[i].entries, log.intervals[i].entries);
}

/**
 * Property test: any CoreLog the generator can produce must (a) have a
 * packed size of exactly sizeBits() + 1 layout bit and (b) survive a
 * pack/unpack round trip. Stresses the edge cases the fixed tests
 * don't: empty logs, zero-entry intervals, maximum 16-bit interval
 * offsets, and dependency frames (dep-uniform: the packed layout is
 * file-global, so either every interval carries predecessors or none
 * does).
 */
TEST(Log, PropertyPackedSizeAndRoundTrip)
{
    rr::sim::Rng rng(0x106f00dULL);
    for (int trial = 0; trial < 40; ++trial) {
        const bool with_deps = trial % 4 == 3;
        CoreLog log;
        const int num_intervals = static_cast<int>(rng.below(12));
        for (int i = 0; i < num_intervals; ++i) {
            IntervalRecord iv;
            // ~1 in 4 intervals is empty (terminated with no entries).
            const int n = rng.below(4) == 0
                              ? 0
                              : 1 + static_cast<int>(rng.below(8));
            for (int e = 0; e < n; ++e) {
                switch (rng.below(7)) {
                  case 0:
                    iv.entries.push_back(
                        LogEntry::inorderBlock(rng.below(1u << 31)));
                    break;
                  case 1:
                    iv.entries.push_back(
                        LogEntry::reorderedLoad(rng.next()));
                    break;
                  case 2:
                    // Max-offset reordered store: the full 16-bit
                    // offset field must survive.
                    iv.entries.push_back(LogEntry::reorderedStore(
                        rng.next() & 0xffffffffffffULL, rng.next(),
                        0xffff));
                    break;
                  case 3:
                    iv.entries.push_back(LogEntry::reorderedAtomic(
                        rng.next() & 0xffffffffffffULL, rng.next(),
                        rng.next(),
                        1 + static_cast<std::uint32_t>(
                                rng.below(0xffff))));
                    break;
                  case 4:
                    iv.entries.push_back(LogEntry::patchedStore(
                        rng.next() & 0xffffffffffffULL, rng.next()));
                    break;
                  case 5:
                    iv.entries.push_back(LogEntry::dummyStore());
                    break;
                  default:
                    iv.entries.push_back(
                        LogEntry::dummyAtomic(rng.next()));
                    break;
                }
            }
            iv.cisn = static_cast<rr::sim::Isn>(i);
            iv.timestamp = rng.next();
            if (with_deps) {
                const int deps = 1 + static_cast<int>(rng.below(3));
                for (int d = 0; d < deps; ++d)
                    iv.predecessors.push_back(IntervalDep{
                        static_cast<rr::sim::CoreId>(rng.below(8)),
                        static_cast<rr::sim::Isn>(rng.below(1000))});
            }
            log.intervals.push_back(std::move(iv));
        }

        const PackedLog packed = pack(log);
        EXPECT_EQ(packed.bitCount, log.sizeBits() + 1)
            << "trial " << trial << " (deps=" << with_deps << ")";
        const CoreLog back = unpack(packed);
        ASSERT_EQ(back.intervals.size(), log.intervals.size());
        for (std::size_t i = 0; i < log.intervals.size(); ++i) {
            EXPECT_EQ(back.intervals[i].entries,
                      log.intervals[i].entries);
            EXPECT_EQ(back.intervals[i].cisn, log.intervals[i].cisn);
            EXPECT_EQ(back.intervals[i].timestamp,
                      log.intervals[i].timestamp);
            EXPECT_EQ(back.intervals[i].predecessors,
                      log.intervals[i].predecessors);
        }
    }
}

TEST(Log, EntryKindNames)
{
    EXPECT_STREQ(toString(EntryKind::InorderBlock), "InorderBlock");
    EXPECT_STREQ(toString(EntryKind::ReorderedLoad), "ReorderedLoad");
    EXPECT_STREQ(toString(EntryKind::PatchedStore), "PatchedStore");
}

} // namespace
