#include <gtest/gtest.h>

#include "rnr/snoop_table.hh"

namespace
{

using rr::rnr::SnoopTable;
using rr::sim::Addr;

TEST(SnoopTable, NoChangeMeansNoConflict)
{
    SnoopTable t(64);
    const auto at_perform = t.read(0x1000);
    EXPECT_FALSE(t.conflictSince(0x1000, at_perform));
}

TEST(SnoopTable, SameLineBumpIsConflict)
{
    SnoopTable t(64);
    const auto at_perform = t.read(0x1000);
    t.bump(0x1000);
    EXPECT_TRUE(t.conflictSince(0x1000, at_perform));
}

TEST(SnoopTable, SingleCounterChangeIsAliasingNotConflict)
{
    // Find a line that collides with 0x1000 in exactly one array; its
    // bump changes one counter only, which must be declared in-order
    // (Section 4.2's aliasing rule).
    SnoopTable t(64);
    const auto base = t.read(0x1000);
    for (Addr probe = 32;; probe += 32) {
        ASSERT_LT(probe, 1u << 22) << "no single-collision line found";
        if (probe == 0x1000)
            continue;
        const auto pb = t.read(probe);
        SnoopTable probe_table(64);
        probe_table.bump(probe);
        const auto after = probe_table.read(0x1000);
        const bool c0 = after.c0 != base.c0;
        const bool c1 = after.c1 != base.c1;
        if (c0 != c1) { // exactly one array collides
            EXPECT_FALSE(probe_table.conflictSince(0x1000, base));
            (void)pb;
            return;
        }
    }
}

TEST(SnoopTable, WordsWithinLineShareCounters)
{
    SnoopTable t(64);
    const auto before = t.read(0x1008);
    t.bump(0x1010); // same 32B line as 0x1008
    EXPECT_TRUE(t.conflictSince(0x1008, before));
}

TEST(SnoopTable, CountersWrapWithoutFalseNegative)
{
    SnoopTable t(64);
    const auto before = t.read(0x1000);
    // 65536 bumps wrap a 16-bit counter exactly back to its old value;
    // 65535 leaves it different.
    for (int i = 0; i < 65535; ++i)
        t.bump(0x1000);
    EXPECT_TRUE(t.conflictSince(0x1000, before));
}

TEST(SnoopTable, SizeMatchesPaper)
{
    SnoopTable t(64);
    EXPECT_EQ(t.sizeBytes(), 256u); // 2 x 64 x 16-bit
}

TEST(SnoopTable, IndependentLinesUsuallyDoNotConflict)
{
    SnoopTable t(64);
    const auto before = t.read(0x1000);
    // Bump a handful of other lines: with 64-entry arrays and two hash
    // functions the chance that both counters of 0x1000 move is tiny.
    int conflicts = 0;
    for (int trial = 0; trial < 32; ++trial) {
        SnoopTable fresh(64);
        const auto b = fresh.read(0x1000);
        for (int i = 1; i <= 4; ++i)
            fresh.bump(0x40000 + (trial * 4 + i) * 32);
        if (fresh.conflictSince(0x1000, b))
            ++conflicts;
    }
    (void)before;
    EXPECT_LE(conflicts, 2);
}

} // namespace
