/**
 * @file
 * Persistent log store tests: wire-format primitives (CRC32, zigzag,
 * varint, chunk header codec), LogWriter/LogReader round trips through
 * real files (empty intervals, empty cores, max offsets, dependency
 * edges, multi-chunk streams), and the full corruption matrix — bit
 * flips in payloads and headers, truncation, zeroed regions, version
 * and fingerprint mismatches. Every failure must surface as a
 * LogStoreError (or a VerifyIssue) naming the file offset and chunk,
 * never as a crash.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <vector>

#include <sys/resource.h>

#include "rnr/logstore.hh"
#include "sim/rng.hh"

namespace
{

using namespace rr::rnr;
namespace fmt = rr::rnr::fmt;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "rr_logstore_" + name + ".rrlog";
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
spew(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** Recompute the file-header CRC after a test patched header fields. */
void
fixFileHeaderCrc(std::vector<std::uint8_t> &bytes)
{
    const std::uint32_t crc =
        fmt::crc32(bytes.data(), fmt::kFileHeaderBytes - 4);
    for (int i = 0; i < 4; ++i)
        bytes[fmt::kFileHeaderBytes - 4 + i] =
            static_cast<std::uint8_t>(crc >> (8 * i));
}

/** File offset of the first chunk of @p type; walks the chunk chain. */
std::uint64_t
findChunk(const std::vector<std::uint8_t> &bytes, fmt::ChunkType type,
          fmt::ChunkHeader *header_out = nullptr)
{
    std::uint64_t off = fmt::kFileHeaderBytes;
    while (off + fmt::kChunkHeaderBytes <= bytes.size()) {
        fmt::ChunkHeader h;
        EXPECT_TRUE(fmt::ChunkHeader::decode(bytes.data() + off, h))
            << "walk hit a bad header at " << off;
        if (h.type == type) {
            if (header_out)
                *header_out = h;
            return off;
        }
        off += fmt::kChunkHeaderBytes + h.payloadBytes();
    }
    ADD_FAILURE() << "no chunk of requested type";
    return 0;
}

RecordingMeta
makeMeta(std::uint32_t cores, bool deps = false)
{
    RecordingMeta meta;
    meta.kernel = "unit-test";
    meta.cores = cores;
    meta.scale = 2;
    meta.intensity = 7;
    meta.workloadSeed = 42;
    meta.machineSeed = 3;
    meta.mode = rr::sim::RecorderMode::Opt;
    meta.intervalCap = 0;
    meta.deps = deps;
    return meta;
}

/**
 * Deterministic per-core logs exercising the edge cases: a zero-entry
 * interval, a 16-bit max-offset reordered store, every entry kind, and
 * one core left completely empty.
 */
std::vector<CoreLog>
makeLogs(std::uint32_t cores, bool deps = false)
{
    std::vector<CoreLog> logs(cores);
    rr::sim::Rng rng(7);
    for (std::uint32_t c = 0; c + 1 < cores; ++c) { // last core empty
        for (int i = 0; i < 5; ++i) {
            IntervalRecord iv;
            if (i != 2) { // interval 2 stays empty (zero entries)
                iv.entries.push_back(
                    LogEntry::inorderBlock(1 + rng.below(1000)));
                iv.entries.push_back(LogEntry::reorderedLoad(rng.next()));
                iv.entries.push_back(LogEntry::reorderedStore(
                    rng.next() & 0xffffffffffffULL, rng.next(), 0xffff));
                iv.entries.push_back(LogEntry::reorderedAtomic(
                    0x1000 + 8 * i, rng.next(), rng.next(), 1));
            }
            iv.cisn = static_cast<rr::sim::Isn>(i);
            iv.timestamp = 100 * c + 10 * static_cast<unsigned>(i) +
                           rng.below(10);
            if (deps)
                iv.predecessors.push_back(IntervalDep{
                    static_cast<rr::sim::CoreId>((c + 1) % cores),
                    static_cast<rr::sim::Isn>(i)});
            logs[c].intervals.push_back(std::move(iv));
        }
    }
    return logs;
}

RecordingSummary
makeSummary(const std::vector<CoreLog> &logs)
{
    RecordingSummary s;
    s.totalInstructions = 12345;
    s.cycles = 999;
    s.memoryFingerprint = 0xfeedf00dULL;
    for (const auto &log : logs) {
        CoreReplaySummary core;
        core.intervals = log.intervals.size();
        core.retiredInstructions = 100 + log.intervals.size();
        core.retiredLoads = 9;
        core.loadValueHash = 0xabcdef;
        s.cores.push_back(core);
    }
    return s;
}

/** Write a complete, valid file; returns what went in. */
std::vector<CoreLog>
writeSample(const std::string &path, std::uint32_t cores = 3,
            bool deps = false)
{
    const auto logs = makeLogs(cores, deps);
    LogWriter writer(path, makeMeta(cores, deps));
    // Interleave cores the way a live recording would.
    for (std::size_t i = 0;; ++i) {
        bool any = false;
        for (std::uint32_t c = 0; c < cores; ++c) {
            if (i < logs[c].intervals.size()) {
                writer.append(c, logs[c].intervals[i]);
                any = true;
            }
        }
        if (!any)
            break;
    }
    writer.finish(makeSummary(logs));
    return logs;
}

void
expectLogsEq(const std::vector<CoreLog> &got,
             const std::vector<CoreLog> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t c = 0; c < want.size(); ++c) {
        ASSERT_EQ(got[c].intervals.size(), want[c].intervals.size())
            << "core " << c;
        for (std::size_t i = 0; i < want[c].intervals.size(); ++i) {
            const auto &g = got[c].intervals[i];
            const auto &w = want[c].intervals[i];
            EXPECT_EQ(g.entries, w.entries) << "core " << c << " iv " << i;
            EXPECT_EQ(g.cisn, w.cisn);
            EXPECT_EQ(g.timestamp, w.timestamp);
            EXPECT_EQ(g.predecessors, w.predecessors);
            // cycle is reporting-only and not persisted.
            EXPECT_EQ(g.cycle, 0u);
        }
    }
}

// --- wire-format primitives ---

TEST(LogFormat, Crc32KnownVector)
{
    const char *msg = "123456789";
    EXPECT_EQ(fmt::crc32(reinterpret_cast<const std::uint8_t *>(msg), 9),
              0xCBF43926u);
    EXPECT_EQ(fmt::crc32(nullptr, 0), 0u);
}

TEST(LogFormat, ZigzagRoundTrip)
{
    for (std::int64_t v : {std::int64_t{0}, std::int64_t{1},
                           std::int64_t{-1}, std::int64_t{123456},
                           std::int64_t{-123456}, INT64_MAX, INT64_MIN})
        EXPECT_EQ(fmt::unzigzag(fmt::zigzag(v)), v) << v;
    EXPECT_EQ(fmt::zigzag(0), 0u);
    EXPECT_EQ(fmt::zigzag(-1), 1u);
    EXPECT_EQ(fmt::zigzag(1), 2u);
}

TEST(LogFormat, VarintRoundTrip)
{
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
          std::uint64_t{128}, std::uint64_t{300},
          std::uint64_t{1} << 32, UINT64_MAX}) {
        BitWriter w;
        fmt::writeVarint(w, v);
        EXPECT_EQ(w.bitCount(), fmt::varintBits(v)) << v;
        BitReader r(w.bytes(), w.bitCount());
        std::uint64_t back = 0;
        for (std::uint32_t g = 0;; ++g) {
            ASSERT_LT(g, fmt::kMaxVarintGroups);
            const std::uint64_t group = r.read(8);
            back |= (group & 0x7f) << (7 * g);
            if (!(group & 0x80))
                break;
        }
        EXPECT_EQ(back, v);
        EXPECT_TRUE(r.atEnd());
    }
}

TEST(LogFormat, ChunkHeaderCodec)
{
    fmt::ChunkHeader h;
    h.type = fmt::ChunkType::Data;
    h.core = 5;
    h.seq = 77;
    h.payloadBits = 1234;
    h.payloadCrc = 0xdeadbeef;
    const auto bytes = h.encode();
    fmt::ChunkHeader back;
    ASSERT_TRUE(fmt::ChunkHeader::decode(bytes.data(), back));
    EXPECT_EQ(back.type, h.type);
    EXPECT_EQ(back.core, h.core);
    EXPECT_EQ(back.seq, h.seq);
    EXPECT_EQ(back.payloadBits, h.payloadBits);
    EXPECT_EQ(back.payloadCrc, h.payloadCrc);
    EXPECT_EQ(back.payloadBytes(), (1234u + 7) / 8);

    auto corrupt = bytes;
    corrupt[9] ^= 0x40; // inside the seq field
    EXPECT_FALSE(fmt::ChunkHeader::decode(corrupt.data(), back));
}

// --- round trips ---

TEST(LogStore, RoundTripFile)
{
    const std::string path = tempPath("roundtrip");
    const auto logs = writeSample(path);

    LogReader reader(path);
    EXPECT_EQ(reader.version(), fmt::kFormatVersion);
    EXPECT_EQ(reader.coreCount(), 3u);
    EXPECT_EQ(reader.meta(), makeMeta(3));
    EXPECT_EQ(reader.fingerprint(), makeMeta(3).fingerprint());
    expectLogsEq(reader.readAll(), logs);
    EXPECT_EQ(reader.summary(), makeSummary(logs));

    const LogFileInfo info = reader.info();
    EXPECT_TRUE(info.cleanEnd);
    EXPECT_TRUE(info.hasSummary);
    EXPECT_EQ(info.intervals, 10u); // 2 cores x 5, last core empty
    EXPECT_EQ(info.dataChunks, 2u); // empty core flushes no chunk
    EXPECT_EQ(info.fileBytes, slurp(path).size());

    EXPECT_TRUE(reader.verify().empty());
    std::remove(path.c_str());
}

TEST(LogStore, RoundTripWithDependencies)
{
    const std::string path = tempPath("deps");
    const auto logs = writeSample(path, 4, /*deps=*/true);
    LogReader reader(path);
    expectLogsEq(reader.readAll(), logs);
    EXPECT_TRUE(reader.verify().empty());
    std::remove(path.c_str());
}

TEST(LogStore, StreamWriterMatchesFileWriter)
{
    std::ostringstream sink;
    const auto logs = makeLogs(2);
    LogWriter writer(sink, makeMeta(2));
    for (const auto &iv : logs[0].intervals)
        writer.append(0, iv);
    writer.finish(makeSummary(logs));
    EXPECT_EQ(writer.bytesWritten(), sink.str().size());

    const std::string path = tempPath("stream");
    const std::string blob = sink.str();
    spew(path, {blob.begin(), blob.end()});
    LogReader reader(path);
    expectLogsEq(reader.readAll(), logs);
    std::remove(path.c_str());
}

TEST(LogStore, MultiChunkStreaming)
{
    // Enough bulky intervals to exceed the 64 KiB chunk target several
    // times over: the reader must stitch chunks back together and the
    // delta codec must restart cleanly at every chunk boundary.
    const std::string path = tempPath("chunks");
    rr::sim::Rng rng(11);
    CoreLog log;
    for (int i = 0; i < 9000; ++i) {
        IntervalRecord iv;
        iv.entries.push_back(LogEntry::inorderBlock(1 + rng.below(50)));
        iv.entries.push_back(LogEntry::reorderedLoad(rng.next()));
        iv.cisn = static_cast<rr::sim::Isn>(i);
        iv.timestamp = 1000 + static_cast<std::uint64_t>(i) * 3;
        log.intervals.push_back(std::move(iv));
    }
    {
        LogWriter writer(path, makeMeta(1));
        for (const auto &iv : log.intervals)
            writer.append(0, iv);
        RecordingSummary s;
        s.cores.push_back(
            CoreReplaySummary{log.intervals.size(), 0, 0, 0});
        writer.finish(s);
        EXPECT_GT(writer.stats().counterValue("flushes"), 1u);
        EXPECT_EQ(writer.intervalsWritten(), log.intervals.size());
    }
    LogReader reader(path);
    EXPECT_GT(reader.info().dataChunks, 1u);
    expectLogsEq(reader.readAll(), {log});
    EXPECT_TRUE(reader.verify().empty());
    std::remove(path.c_str());
}

TEST(LogStore, WriterExportsIoCounters)
{
    const std::string path = tempPath("stats");
    writeSample(path);
    LogWriter probe(tempPath("stats2"), makeMeta(2));
    probe.append(0, makeLogs(2)[0].intervals[0]);
    probe.finish(makeSummary(makeLogs(2)));
    const rr::sim::StatSet &st = probe.stats();
    EXPECT_GT(st.counterValue("bytes_written"), 0u);
    EXPECT_GE(st.counterValue("chunks_written"), 3u); // meta+data+summary
    EXPECT_EQ(st.counterValue("intervals_written"), 1u);
    EXPECT_GE(st.counterValue("flushes"), 1u);
    EXPECT_GT(st.counterValue("payload_bits"), 0u);
    std::remove(path.c_str());
    std::remove(tempPath("stats2").c_str());
}

// --- corruption handling ---

TEST(LogStoreCorruption, PayloadBitFlip)
{
    const std::string path = tempPath("payloadflip");
    writeSample(path);
    auto bytes = slurp(path);
    fmt::ChunkHeader h;
    const std::uint64_t off = findChunk(bytes, fmt::ChunkType::Data, &h);
    bytes[off + fmt::kChunkHeaderBytes + 2] ^= 0x10;
    spew(path, bytes);

    LogReader reader(path);
    try {
        reader.readAll();
        FAIL() << "corrupt payload was not detected";
    } catch (const LogStoreError &e) {
        EXPECT_EQ(e.fileOffset(), off);
        EXPECT_EQ(e.chunkSeq(), static_cast<std::int64_t>(h.seq));
        EXPECT_NE(std::string(e.what()).find("payload CRC"),
                  std::string::npos)
            << e.what();
    }
    // verify() reports the same problem without throwing, and keeps
    // walking (summary/interval cross-check fires too).
    const auto issues = LogReader(path).verify();
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].fileOffset, off);
    EXPECT_EQ(issues[0].chunkSeq, static_cast<std::int64_t>(h.seq));
    std::remove(path.c_str());
}

TEST(LogStoreCorruption, ChunkHeaderBitFlip)
{
    const std::string path = tempPath("headerflip");
    writeSample(path);
    auto bytes = slurp(path);
    const std::uint64_t off = findChunk(bytes, fmt::ChunkType::Data);
    bytes[off + 16] ^= 0x01; // payloadBits field
    spew(path, bytes);

    LogReader reader(path);
    try {
        reader.readAll();
        FAIL() << "corrupt chunk header was not detected";
    } catch (const LogStoreError &e) {
        EXPECT_EQ(e.fileOffset(), off);
        EXPECT_NE(std::string(e.what()).find("header CRC"),
                  std::string::npos)
            << e.what();
    }
    const auto issues = LogReader(path).verify();
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].fileOffset, off);
    std::remove(path.c_str());
}

TEST(LogStoreCorruption, ZeroedChunkRegion)
{
    const std::string path = tempPath("zeroed");
    writeSample(path);
    auto bytes = slurp(path);
    fmt::ChunkHeader h;
    const std::uint64_t off = findChunk(bytes, fmt::ChunkType::Data, &h);
    const std::uint64_t len = fmt::kChunkHeaderBytes + h.payloadBytes();
    for (std::uint64_t i = 0; i < len; ++i)
        bytes[off + i] = 0;
    spew(path, bytes);

    EXPECT_THROW(LogReader(path).readAll(), LogStoreError);
    const auto issues = LogReader(path).verify();
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].fileOffset, off);
    std::remove(path.c_str());
}

TEST(LogStoreCorruption, TruncatedMidChunk)
{
    const std::string path = tempPath("truncmid");
    writeSample(path);
    auto bytes = slurp(path);
    const std::uint64_t off = findChunk(bytes, fmt::ChunkType::Data);
    bytes.resize(off + fmt::kChunkHeaderBytes + 1); // cut into payload
    spew(path, bytes);

    LogReader reader(path);
    try {
        reader.readAll();
        FAIL() << "truncation was not detected";
    } catch (const LogStoreError &e) {
        EXPECT_EQ(e.fileOffset(), off);
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_FALSE(LogReader(path).verify().empty());
    std::remove(path.c_str());
}

TEST(LogStoreCorruption, MissingEndMarker)
{
    const std::string path = tempPath("noend");
    writeSample(path);
    auto bytes = slurp(path);
    // Drop the End chunk exactly (empty payload: 32 header bytes).
    bytes.resize(bytes.size() - fmt::kChunkHeaderBytes);
    spew(path, bytes);

    LogReader reader(path);
    try {
        reader.readAll();
        FAIL() << "missing end marker was not detected";
    } catch (const LogStoreError &e) {
        EXPECT_NE(std::string(e.what()).find("end-of-log"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_FALSE(LogReader(path).verify().empty());
    std::remove(path.c_str());
}

TEST(LogStoreCorruption, UnfinishedWriterFileHasNoSummary)
{
    const std::string path = tempPath("unfinished");
    const std::string tmp = path + ".tmp";
    {
        LogWriter writer(path, makeMeta(2));
        writer.append(0, makeLogs(2)[0].intervals[0]);
        EXPECT_EQ(writer.currentPath(), tmp);
        // no finish(): simulates a crash during recording
    }
    // Crash consistency: the final path never exists half-written; the
    // torn data is only ever visible at the .tmp staging path.
    EXPECT_THROW(LogReader{path}, LogStoreError);
    LogReader reader(tmp);
    EXPECT_THROW(reader.summary(), LogStoreError);
    const auto issues = LogReader(tmp).verify();
    ASSERT_FALSE(issues.empty());
    bool saw_truncation = false;
    for (const auto &i : issues)
        saw_truncation |= i.message.find("truncated") != std::string::npos;
    EXPECT_TRUE(saw_truncation);
    std::remove(tmp.c_str());
}

TEST(LogStoreCorruption, SummaryIntervalCountMismatch)
{
    const std::string path = tempPath("badsummary");
    const auto logs = makeLogs(2);
    LogWriter writer(path, makeMeta(2));
    for (const auto &iv : logs[0].intervals)
        writer.append(0, iv);
    RecordingSummary s = makeSummary(logs);
    s.cores[0].intervals += 3; // lie about the interval count
    writer.finish(s);

    const auto issues = LogReader(path).verify();
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("summary promises"),
              std::string::npos)
        << issues[0].message;
    std::remove(path.c_str());
}

// --- compatibility rejection ---

TEST(LogStoreReject, BadMagic)
{
    const std::string path = tempPath("magic");
    writeSample(path);
    auto bytes = slurp(path);
    bytes[0] = 'X';
    spew(path, bytes);
    EXPECT_THROW(LogReader reader(path), LogStoreError);
    std::remove(path.c_str());
}

TEST(LogStoreReject, HeaderCrcMismatch)
{
    const std::string path = tempPath("hdrcrc");
    writeSample(path);
    auto bytes = slurp(path);
    bytes[17] ^= 0x01; // core-count field, CRC left stale
    spew(path, bytes);
    try {
        LogReader reader(path);
        FAIL() << "stale header CRC was not detected";
    } catch (const LogStoreError &e) {
        EXPECT_NE(std::string(e.what()).find("header CRC"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(LogStoreReject, NewerFormatVersion)
{
    const std::string path = tempPath("version");
    writeSample(path);
    auto bytes = slurp(path);
    bytes[4] = static_cast<std::uint8_t>(fmt::kFormatVersion + 1);
    bytes[5] = 0;
    fixFileHeaderCrc(bytes);
    spew(path, bytes);
    try {
        LogReader reader(path);
        FAIL() << "newer format version was not refused";
    } catch (const LogStoreError &e) {
        EXPECT_NE(std::string(e.what()).find("newer than this reader"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(LogStoreReject, FingerprintMismatch)
{
    const std::string path = tempPath("fingerprint");
    writeSample(path);
    auto bytes = slurp(path);
    bytes[8] ^= 0xff; // low byte of the stored fingerprint
    fixFileHeaderCrc(bytes);
    spew(path, bytes);
    try {
        LogReader reader(path);
        FAIL() << "fingerprint mismatch was not refused";
    } catch (const LogStoreError &e) {
        EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(LogStoreReject, EmptyAndShortFiles)
{
    const std::string path = tempPath("short");
    spew(path, {});
    EXPECT_THROW(LogReader reader(path), LogStoreError);
    spew(path, {'R', 'R', 'L', 'G', 1});
    EXPECT_THROW(LogReader reader(path), LogStoreError);
    std::remove(path.c_str());
}

// --- recovery, consistent cuts, partial files ---

/** Logs where every core has data and timestamps are globally unique. */
std::vector<CoreLog>
makeFullLogs(std::uint32_t cores, int per_core = 6)
{
    std::vector<CoreLog> logs(cores);
    rr::sim::Rng rng(11);
    for (std::uint32_t c = 0; c < cores; ++c) {
        for (int i = 0; i < per_core; ++i) {
            IntervalRecord iv;
            iv.entries.push_back(
                LogEntry::inorderBlock(1 + rng.below(64)));
            iv.entries.push_back(LogEntry::reorderedLoad(rng.next()));
            iv.cisn = static_cast<rr::sim::Isn>(2 * (i + 1));
            iv.timestamp = 1 + static_cast<std::uint64_t>(i) * cores + c;
            logs[c].intervals.push_back(std::move(iv));
        }
    }
    return logs;
}

/** Write @p logs with small chunks so every core spans many chunks. */
void
writeWithChunkTarget(const std::string &path,
                     const std::vector<CoreLog> &logs,
                     std::size_t chunk_bytes)
{
    WriterOptions opts;
    opts.chunkTargetBytes = chunk_bytes;
    LogWriter writer(path, makeMeta(static_cast<std::uint32_t>(
                               logs.size())),
                     opts);
    for (std::size_t i = 0;; ++i) {
        bool any = false;
        for (std::uint32_t c = 0; c < logs.size(); ++c) {
            if (i < logs[c].intervals.size()) {
                writer.append(c, logs[c].intervals[i]);
                any = true;
            }
        }
        if (!any)
            break;
    }
    writer.finish(makeSummary(logs));
}

TEST(LogStoreRecovery, CleanFileSalvagesCompletely)
{
    const std::string path = tempPath("recover_clean");
    const auto logs = writeSample(path);

    RecoveryResult rec = LogReader(path).recoverPrefix();
    EXPECT_TRUE(rec.cleanEnd);
    EXPECT_TRUE(rec.hasSummary);
    EXPECT_TRUE(rec.issues.empty());
    EXPECT_EQ(rec.droppedChunks, 0u);
    expectLogsEq(rec.logs, logs);
    ASSERT_EQ(rec.coreTruncated.size(), logs.size());
    for (bool t : rec.coreTruncated)
        EXPECT_FALSE(t);

    // A clean salvage loses nothing to the consistent cut.
    const std::uint64_t before = rec.salvagedIntervals;
    consistentCut(rec.logs, rec.coreTruncated);
    std::uint64_t after = 0;
    for (const auto &log : rec.logs)
        after += log.intervals.size();
    EXPECT_EQ(after, before);
    std::remove(path.c_str());
}

TEST(LogStoreRecovery, TruncatedTailSalvagesPerCoreChunkPrefixes)
{
    const std::string path = tempPath("recover_trunc");
    const auto logs = makeFullLogs(2);
    writeWithChunkTarget(path, logs, 16); // ~1 interval per chunk
    auto bytes = slurp(path);
    bytes.resize(bytes.size() * 2 / 3); // tear well into the data
    spew(path, bytes);

    RecoveryResult rec = LogReader(path).recoverPrefix();
    EXPECT_FALSE(rec.cleanEnd);
    EXPECT_FALSE(rec.issues.empty());
    EXPECT_GE(rec.salvagedChunks, 1u);
    EXPECT_GT(rec.salvagedIntervals, 0u);
    EXPECT_LT(rec.salvagedIntervals,
              2u * logs[0].intervals.size());
    // Without an End marker every core is suspect.
    for (bool t : rec.coreTruncated)
        EXPECT_TRUE(t);
    // Each salvaged log is an exact prefix of what was recorded.
    for (std::size_t c = 0; c < rec.logs.size(); ++c) {
        const auto &got = rec.logs[c].intervals;
        ASSERT_LE(got.size(), logs[c].intervals.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], logs[c].intervals[i])
                << "core " << c << " iv " << i;
    }

    // The cut keeps exactly the globally-closed prefix: every kept
    // timestamp is <= the smallest per-core last timestamp.
    const std::uint64_t cut = consistentCut(rec.logs);
    for (const auto &log : rec.logs)
        for (const auto &iv : log.intervals)
            EXPECT_LE(iv.timestamp, cut);
    std::remove(path.c_str());
}

TEST(LogStoreRecovery, CorruptChunkKillsOnlyThatCoreFromThereOn)
{
    const std::string path = tempPath("recover_corrupt");
    const auto logs = makeFullLogs(2);
    writeWithChunkTarget(path, logs, 16);
    auto bytes = slurp(path);

    // Corrupt the payload of core 0's *second* data chunk.
    std::uint64_t off = fmt::kFileHeaderBytes;
    int seen_core0 = 0;
    std::uint64_t target = 0;
    while (off + fmt::kChunkHeaderBytes <= bytes.size()) {
        fmt::ChunkHeader h;
        ASSERT_TRUE(fmt::ChunkHeader::decode(bytes.data() + off, h));
        if (h.type == fmt::ChunkType::Data && h.core == 0 &&
            ++seen_core0 == 2) {
            target = off;
            break;
        }
        off += fmt::kChunkHeaderBytes + h.payloadBytes();
    }
    ASSERT_NE(target, 0u);
    bytes[target + fmt::kChunkHeaderBytes] ^= 0x40;
    spew(path, bytes);

    RecoveryResult rec = LogReader(path).recoverPrefix();
    // Framing stays intact, so the walk reaches the End marker...
    EXPECT_TRUE(rec.cleanEnd);
    EXPECT_GE(rec.droppedChunks, 1u);
    EXPECT_FALSE(rec.issues.empty());
    ASSERT_EQ(rec.logs.size(), 2u);
    // ...core 0 keeps only the intervals before the corrupt chunk,
    // core 1 is complete and not marked truncated.
    EXPECT_LT(rec.logs[0].intervals.size(), logs[0].intervals.size());
    EXPECT_GE(rec.logs[0].intervals.size(), 1u);
    EXPECT_EQ(rec.logs[1].intervals.size(), logs[1].intervals.size());
    EXPECT_TRUE(rec.coreTruncated[0]);
    EXPECT_FALSE(rec.coreTruncated[1]);

    // Only the damaged core constrains the cut; core 1 gets trimmed
    // back to the point core 0's data still covers.
    const std::uint64_t cut =
        consistentCut(rec.logs, rec.coreTruncated);
    EXPECT_EQ(cut, rec.logs[0].intervals.back().timestamp);
    std::remove(path.c_str());
}

TEST(LogStoreRecovery, ConsistentCutSemantics)
{
    const auto make = [] {
        std::vector<CoreLog> logs(2);
        for (std::uint64_t ts : {1, 5, 9})
            logs[0].intervals.push_back(IntervalRecord{{}, 1, ts, 0, {}});
        for (std::uint64_t ts : {2, 6, 10})
            logs[1].intervals.push_back(IntervalRecord{{}, 1, ts, 0, {}});
        return logs;
    };

    // Empty vector = conservatively treat every core as truncated.
    auto logs = make();
    EXPECT_EQ(consistentCut(logs), 9u);
    EXPECT_EQ(logs[0].intervals.size(), 3u);
    EXPECT_EQ(logs[1].intervals.size(), 2u); // ts 10 dropped

    // Only a truncated core constrains the cut: core 1 truncated at
    // ts 10 allows everything through.
    logs = make();
    EXPECT_EQ(consistentCut(logs, {false, true}), 10u);
    EXPECT_EQ(logs[0].intervals.size(), 3u);
    EXPECT_EQ(logs[1].intervals.size(), 3u);

    // Core 0 truncated at ts 9 trims the complete core too: its ts-10
    // interval may depend on what core 0 lost.
    logs = make();
    EXPECT_EQ(consistentCut(logs, {true, false}), 9u);
    EXPECT_EQ(logs[1].intervals.size(), 2u);

    // No truncated cores: nothing is trimmed.
    logs = make();
    EXPECT_EQ(consistentCut(logs, {false, false}), 10u);
    EXPECT_EQ(logs[0].intervals.size() + logs[1].intervals.size(), 6u);

    // A truncated core with nothing salvaged forces an empty cut.
    logs = make();
    logs[0].intervals.clear();
    EXPECT_EQ(consistentCut(logs, {true, false}), 0u);
    EXPECT_TRUE(logs[1].intervals.empty());

    // Repair flow idempotence: once a cut is applied and the result is
    // re-read from a cleanly-salvaged (partial) file, no core is
    // truncated any more, so a second cut trims nothing.
    logs = make();
    consistentCut(logs, {true, false});
    auto again = logs;
    consistentCut(again, {false, false});
    for (std::size_t c = 0; c < logs.size(); ++c)
        EXPECT_EQ(again[c].intervals.size(), logs[c].intervals.size());
}

TEST(LogStorePartial, FinishPartialPreservesSummaryAndFlags)
{
    const std::string path = tempPath("partial");
    const auto logs = makeFullLogs(2, 4);
    const RecordingSummary full = makeSummary(logs);
    {
        WriterOptions opts;
        opts.headerFlags = fmt::kFlagPartial;
        LogWriter writer(path, makeMeta(2), opts);
        // Persist only a prefix (what `rrlog repair` salvaged)...
        for (std::uint32_t c = 0; c < 2; ++c)
            for (int i = 0; i < 2; ++i)
                writer.append(c, logs[c].intervals[i]);
        // ...but preserve the original full-recording summary.
        writer.finishPartial(&full);
        EXPECT_TRUE(writer.headerFlags() & fmt::kFlagPartial);
    }

    LogReader reader(path);
    EXPECT_TRUE(reader.partial());
    // Partial files are exempt from summary/data count matching...
    EXPECT_TRUE(reader.verify().empty());
    // ...and still replayable/readable end to end.
    const auto got = reader.readAll();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].intervals.size(), 2u);
    EXPECT_EQ(reader.summary(), full);

    RecoveryResult rec = LogReader(path).recoverPrefix();
    EXPECT_TRUE(rec.cleanEnd);
    for (bool t : rec.coreTruncated)
        EXPECT_FALSE(t);
    std::remove(path.c_str());
}

TEST(LogStorePartial, FinishPartialWithoutSummary)
{
    const std::string path = tempPath("partial_nosum");
    const auto logs = makeFullLogs(2, 2);
    {
        LogWriter writer(path, makeMeta(2));
        writer.append(0, logs[0].intervals[0]);
        writer.finishPartial();
    }
    LogReader reader(path);
    EXPECT_TRUE(reader.partial());
    EXPECT_TRUE(reader.verify().empty());
    EXPECT_THROW(reader.summary(), LogStoreError);
    EXPECT_EQ(reader.readAll()[0].intervals.size(), 1u);
    std::remove(path.c_str());
}

TEST(LogStorePartial, BudgetFlushesAConsistentPrefixAndFlagsPartial)
{
    const std::string path = tempPath("budget");
    const auto logs = makeFullLogs(2, 8);
    WriterOptions opts;
    opts.chunkTargetBytes = 32;
    opts.budgetBytes = 400;
    LogWriter writer(path, makeMeta(2), opts);
    std::size_t appended = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::uint32_t c = 0; c < 2; ++c) {
            writer.append(c, logs[c].intervals[i]);
            ++appended;
        }
    }
    writer.finish(makeSummary(logs));
    EXPECT_TRUE(writer.headerFlags() & fmt::kFlagPartial);
    EXPECT_EQ(writer.stats().counterValue("budget_exceeded"), 1u);
    EXPECT_GT(writer.stats().counterValue("intervals_dropped_budget"),
              0u);
    EXPECT_EQ(writer.intervalsWritten() +
                  writer.stats().counterValue("intervals_dropped_budget"),
              appended);

    LogReader reader(path);
    EXPECT_TRUE(reader.partial());
    EXPECT_TRUE(reader.verify().empty());
    const auto got = reader.readAll();
    // The budget trip lands every interval appended before it — the
    // on-disk set is an append-order (close-order) prefix per core.
    std::uint64_t kept = 0;
    for (std::size_t c = 0; c < got.size(); ++c) {
        ASSERT_LE(got[c].intervals.size(), logs[c].intervals.size());
        for (std::size_t i = 0; i < got[c].intervals.size(); ++i)
            EXPECT_EQ(got[c].intervals[i], logs[c].intervals[i]);
        kept += got[c].intervals.size();
    }
    EXPECT_GT(kept, 0u);
    EXPECT_LT(kept, appended);
    // Both cores were cut at the same append round (+/- the interval
    // that tripped the budget).
    EXPECT_LE(static_cast<std::uint64_t>(
                  std::abs(static_cast<long>(got[0].intervals.size()) -
                           static_cast<long>(got[1].intervals.size()))),
              1u);
    std::remove(path.c_str());
}

// --- zero-copy (mmap) ingest and parallel decode ---

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RR_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RR_TEST_UNDER_SANITIZER 1
#endif
#endif
#ifndef RR_TEST_UNDER_SANITIZER
#define RR_TEST_UNDER_SANITIZER 0
#endif

TEST(LogStoreIngest, MmapMatchesStreamed)
{
    const std::string path = tempPath("mmap_match");
    const auto logs = writeSample(path, 3, /*deps=*/true);

    LogReader streamed(path, IngestMode::Streamed);
    EXPECT_EQ(streamed.ingestMode(), IngestMode::Streamed);
    LogReader mapped(path, IngestMode::Mmap);
    EXPECT_EQ(mapped.ingestMode(), IngestMode::Mmap);
    EXPECT_EQ(streamed.fileBytes(), mapped.fileBytes());

    expectLogsEq(streamed.readAll(), logs);
    expectLogsEq(mapped.readAll(), logs);
    EXPECT_TRUE(LogReader(path, IngestMode::Mmap).verify().empty());

    // Auto prefers the zero-copy path on a regular file.
    EXPECT_EQ(LogReader(path).ingestMode(), IngestMode::Mmap);
    std::remove(path.c_str());
}

TEST(LogStoreIngest, ParallelDecodeMatchesSequential)
{
    // Sweep worker counts x chunk sizes (many tiny chunks stress the
    // per-chunk arena staging; one big chunk stresses the serial
    // fallback) under both ingest modes.
    const auto logs = makeFullLogs(4, 50);
    for (const std::size_t chunk_bytes : {std::size_t{16},
                                          std::size_t{256},
                                          std::size_t{1} << 20}) {
        const std::string path =
            tempPath("par_" + std::to_string(chunk_bytes));
        writeWithChunkTarget(path, logs, chunk_bytes);
        const auto want = LogReader(path, IngestMode::Streamed).readAll();
        expectLogsEq(want, logs);
        for (const std::uint32_t workers : {1u, 2u, 8u}) {
            for (const IngestMode mode :
                 {IngestMode::Streamed, IngestMode::Mmap}) {
                LogReader reader(path, mode);
                expectLogsEq(reader.readAllParallel(workers), want);
            }
        }
        std::remove(path.c_str());
    }
}

/** One decode attempt, with any LogStoreError captured for parity
 *  comparison across ingest modes and decode strategies. */
struct DecodeOutcome
{
    bool threw = false;
    std::string message;
    std::uint64_t offset = 0;
    std::int64_t seq = 0;
    LogErrorKind kind = LogErrorKind::Format;
    std::uint64_t intervals = 0;
};

DecodeOutcome
decodeOutcome(const std::string &path, IngestMode mode, bool parallel,
              std::uint32_t workers = 4)
{
    DecodeOutcome o;
    try {
        LogReader reader(path, mode);
        const auto logs =
            parallel ? reader.readAllParallel(workers) : reader.readAll();
        for (const auto &log : logs)
            o.intervals += log.intervals.size();
    } catch (const LogStoreError &e) {
        o.threw = true;
        o.message = e.what();
        o.offset = e.fileOffset();
        o.seq = e.chunkSeq();
        o.kind = e.kind();
    }
    return o;
}

TEST(LogStoreIngest, CorruptionMatrixIngestParity)
{
    // Every corruption class x {streamed, mmap} x {sequential,
    // parallel}: all four readers must agree on the exact outcome —
    // same error message, file offset, chunk seq and kind (or the same
    // successful decode). This pins the parallel mmap path to the
    // sequential streamed path's error behavior.
    const auto logs = makeFullLogs(3, 20);
    const std::string path = tempPath("parity");
    writeWithChunkTarget(path, logs, 64);
    const auto pristine = slurp(path);

    struct Case
    {
        const char *name;
        std::function<void(std::vector<std::uint8_t> &)> corrupt;
    };
    const std::vector<Case> cases = {
        {"pristine", [](std::vector<std::uint8_t> &) {}},
        {"payload_bit_flip",
         [](std::vector<std::uint8_t> &b) {
             const std::uint64_t off =
                 findChunk(b, fmt::ChunkType::Data);
             b[off + fmt::kChunkHeaderBytes] ^= 0x20;
         }},
        {"late_payload_bit_flip",
         [](std::vector<std::uint8_t> &b) {
             // Corrupt a *late* data chunk: the parallel decoder may
             // finish other chunks first but must still report this
             // one (first in file order).
             std::uint64_t off = fmt::kFileHeaderBytes, last = 0;
             while (off + fmt::kChunkHeaderBytes <= b.size()) {
                 fmt::ChunkHeader h;
                 ASSERT_TRUE(
                     fmt::ChunkHeader::decode(b.data() + off, h));
                 if (h.type == fmt::ChunkType::Data)
                     last = off;
                 off += fmt::kChunkHeaderBytes + h.payloadBytes();
             }
             ASSERT_NE(last, 0u);
             b[last + fmt::kChunkHeaderBytes] ^= 0x20;
         }},
        {"chunk_header_bit_flip",
         [](std::vector<std::uint8_t> &b) {
             const std::uint64_t off =
                 findChunk(b, fmt::ChunkType::Data);
             b[off + 16] ^= 0x01;
         }},
        {"zeroed_chunk",
         [](std::vector<std::uint8_t> &b) {
             fmt::ChunkHeader h;
             const std::uint64_t off =
                 findChunk(b, fmt::ChunkType::Data, &h);
             const std::uint64_t len =
                 fmt::kChunkHeaderBytes + h.payloadBytes();
             for (std::uint64_t i = 0; i < len; ++i)
                 b[off + i] = 0;
         }},
        {"truncated_mid_payload",
         [](std::vector<std::uint8_t> &b) {
             const std::uint64_t off =
                 findChunk(b, fmt::ChunkType::Data);
             b.resize(off + fmt::kChunkHeaderBytes + 1);
         }},
        {"truncated_mid_header",
         [](std::vector<std::uint8_t> &b) {
             const std::uint64_t off =
                 findChunk(b, fmt::ChunkType::Data);
             b.resize(off + 7);
         }},
        {"missing_end_marker",
         [](std::vector<std::uint8_t> &b) {
             b.resize(b.size() - fmt::kChunkHeaderBytes);
         }},
        {"summary_payload_bit_flip",
         [](std::vector<std::uint8_t> &b) {
             const std::uint64_t off =
                 findChunk(b, fmt::ChunkType::Summary);
             b[off + fmt::kChunkHeaderBytes] ^= 0x04;
         }},
    };

    for (const Case &c : cases) {
        auto bytes = pristine;
        c.corrupt(bytes);
        spew(path, bytes);

        const DecodeOutcome want =
            decodeOutcome(path, IngestMode::Streamed, false);
        for (const bool parallel : {false, true}) {
            for (const IngestMode mode :
                 {IngestMode::Streamed, IngestMode::Mmap}) {
                if (!parallel && mode == IngestMode::Streamed)
                    continue; // that's `want` itself
                const DecodeOutcome got =
                    decodeOutcome(path, mode, parallel);
                EXPECT_EQ(got.threw, want.threw) << c.name;
                EXPECT_EQ(got.message, want.message) << c.name;
                EXPECT_EQ(got.offset, want.offset) << c.name;
                EXPECT_EQ(got.seq, want.seq) << c.name;
                EXPECT_EQ(got.kind, want.kind) << c.name;
                EXPECT_EQ(got.intervals, want.intervals) << c.name;
            }
        }
    }
    std::remove(path.c_str());
}

TEST(LogStoreIngest, WalkIntervalsEarlyStop)
{
    const std::string path = tempPath("walk_stop");
    writeSample(path); // 10 intervals across 2 data chunks

    LogReader reader(path);
    std::uint64_t seen = 0;
    const bool complete = reader.walkIntervals(
        [&seen](rr::sim::CoreId, const IntervalRecord &,
                const LogReader::ChunkView &) {
            return ++seen < 3; // stop after the third interval
        });
    EXPECT_FALSE(complete);
    EXPECT_EQ(seen, 3u);

    // A full walk reports completion and sees everything, with
    // monotonically non-decreasing chunk offsets.
    seen = 0;
    std::uint64_t last_offset = 0;
    const bool full = LogReader(path).walkIntervals(
        [&](rr::sim::CoreId, const IntervalRecord &,
            const LogReader::ChunkView &view) {
            ++seen;
            EXPECT_GE(view.offset, last_offset);
            last_offset = view.offset;
            return true;
        });
    EXPECT_TRUE(full);
    EXPECT_EQ(seen, 10u);
    std::remove(path.c_str());
}

TEST(LogStoreIngest, StreamingWalkKeepsRssBounded)
{
    if (RR_TEST_UNDER_SANITIZER)
        GTEST_SKIP() << "RSS accounting is meaningless under sanitizers";

    // A file holding several MiB of intervals, walked with the
    // streaming API (the rrlog stats/dump path): peak RSS must grow by
    // far less than the file size, because only one chunk is ever
    // resident.
    const std::string path = tempPath("rss");
    rr::sim::Rng rng(23);
    {
        LogWriter writer(path, makeMeta(1));
        IntervalRecord iv;
        for (int i = 0; i < 400'000; ++i) {
            iv.entries.clear();
            iv.entries.push_back(
                LogEntry::inorderBlock(1 + rng.below(64)));
            iv.entries.push_back(LogEntry::reorderedLoad(rng.next()));
            iv.cisn = static_cast<rr::sim::Isn>(i);
            iv.timestamp = static_cast<std::uint64_t>(i) + 1;
            writer.append(0, iv);
        }
        RecordingSummary s;
        s.cores.push_back(CoreReplaySummary{400'000, 0, 0, 0});
        writer.finish(s);
    }
    const std::uint64_t file_bytes = slurp(path).size();
    ASSERT_GT(file_bytes, 4u << 20);

    struct rusage before;
    ASSERT_EQ(getrusage(RUSAGE_SELF, &before), 0);
    std::uint64_t seen = 0;
    LogReader reader(path, IngestMode::Streamed);
    reader.walkIntervals([&seen](rr::sim::CoreId,
                                 const IntervalRecord &,
                                 const LogReader::ChunkView &) {
        ++seen;
        return true;
    });
    struct rusage after;
    ASSERT_EQ(getrusage(RUSAGE_SELF, &after), 0);
    EXPECT_EQ(seen, 400'000u);

    // ru_maxrss is KiB on Linux. Allow generous slack (allocator
    // overhead, the slurp above) — the point is "not O(file size)".
    const long grown_kib = after.ru_maxrss - before.ru_maxrss;
    EXPECT_LT(grown_kib, static_cast<long>(file_bytes >> 11))
        << "walk grew RSS by " << grown_kib << " KiB over a "
        << (file_bytes >> 10) << " KiB file";
    std::remove(path.c_str());
}

TEST(LogStoreIo, WriterAndReaderSurfaceOsErrorsWithErrno)
{
    try {
        LogWriter writer("/nonexistent-rr-dir/out.rrlog", makeMeta(1));
        FAIL() << "expected LogStoreError";
    } catch (const LogStoreError &e) {
        EXPECT_EQ(e.kind(), LogErrorKind::Io);
        EXPECT_EQ(e.osError(), ENOENT);
        EXPECT_NE(std::string(e.what()).find("No such file"),
                  std::string::npos)
            << e.what();
    }
    try {
        LogReader reader(tempPath("does_not_exist"));
        FAIL() << "expected LogStoreError";
    } catch (const LogStoreError &e) {
        EXPECT_EQ(e.kind(), LogErrorKind::Io);
        EXPECT_EQ(e.osError(), ENOENT);
    }
    // Structural failures keep the default Format kind.
    const std::string path = tempPath("kind_format");
    spew(path, {'R', 'R', 'L', 'G', 1});
    try {
        LogReader reader(path);
        FAIL() << "expected LogStoreError";
    } catch (const LogStoreError &e) {
        EXPECT_EQ(e.kind(), LogErrorKind::Format);
        EXPECT_EQ(e.osError(), 0);
    }
    std::remove(path.c_str());
}

} // namespace
