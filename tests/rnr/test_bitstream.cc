#include <gtest/gtest.h>

#include "rnr/bitstream.hh"
#include "sim/rng.hh"

namespace
{

using rr::rnr::BitReader;
using rr::rnr::BitWriter;

TEST(BitStream, SingleFieldRoundTrip)
{
    BitWriter w;
    w.write(0b101, 3);
    EXPECT_EQ(w.bitCount(), 3u);
    BitReader r(w.bytes(), w.bitCount());
    EXPECT_EQ(r.read(3), 0b101u);
    EXPECT_TRUE(r.atEnd());
}

TEST(BitStream, UnalignedFieldsRoundTrip)
{
    BitWriter w;
    w.write(0x5, 3);
    w.write(0x1234, 16);
    w.write(1, 1);
    w.write(0xdeadbeefcafef00dULL, 64);
    BitReader r(w.bytes(), w.bitCount());
    EXPECT_EQ(r.read(3), 0x5u);
    EXPECT_EQ(r.read(16), 0x1234u);
    EXPECT_EQ(r.read(1), 1u);
    EXPECT_EQ(r.read(64), 0xdeadbeefcafef00dULL);
    EXPECT_TRUE(r.atEnd());
}

TEST(BitStream, FullWidth64)
{
    BitWriter w;
    w.write(~0ULL, 64);
    BitReader r(w.bytes(), w.bitCount());
    EXPECT_EQ(r.read(64), ~0ULL);
}

TEST(BitStream, RandomizedRoundTrip)
{
    rr::sim::Rng rng(42);
    BitWriter w;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> fields;
    for (int i = 0; i < 1000; ++i) {
        const std::uint32_t width =
            1 + static_cast<std::uint32_t>(rng.below(64));
        const std::uint64_t value =
            width == 64 ? rng.next() : rng.next() & ((1ULL << width) - 1);
        fields.emplace_back(value, width);
        w.write(value, width);
    }
    BitReader r(w.bytes(), w.bitCount());
    for (const auto &[value, width] : fields)
        ASSERT_EQ(r.read(width), value);
    EXPECT_TRUE(r.atEnd());
}

TEST(BitStream, ByteCountIsCeilOfBits)
{
    BitWriter w;
    w.write(1, 9);
    EXPECT_EQ(w.bytes().size(), 2u);
}

TEST(BitStreamDeathTest, OversizedValueIsRejected)
{
    BitWriter w;
    EXPECT_DEATH(w.write(8, 3), "fit");
}

TEST(BitStreamDeathTest, UnderrunIsRejected)
{
    BitWriter w;
    w.write(1, 4);
    BitReader r(w.bytes(), w.bitCount());
    r.read(4);
    EXPECT_DEATH(r.read(1), "underrun");
}

} // namespace
