#include <gtest/gtest.h>

#include <set>

#include "rnr/signature.hh"
#include "sim/rng.hh"

namespace
{

using rr::rnr::Signature;
using rr::sim::Addr;

TEST(Signature, EmptyContainsNothing)
{
    Signature s(4, 256, 1);
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.mightContain(0x1000));
}

TEST(Signature, NoFalseNegatives)
{
    Signature s(4, 256, 1);
    rr::sim::Rng rng(7);
    std::vector<Addr> inserted;
    for (int i = 0; i < 100; ++i) {
        Addr line = (rng.next() & 0xffffff) * 32;
        s.insert(line);
        inserted.push_back(line);
    }
    for (Addr line : inserted)
        EXPECT_TRUE(s.mightContain(line));
}

TEST(Signature, ClearEmptiesCompletely)
{
    Signature s(4, 256, 1);
    s.insert(0x1000);
    EXPECT_FALSE(s.empty());
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.mightContain(0x1000));
    EXPECT_EQ(s.population(), 0u);
}

TEST(Signature, FalsePositiveRateIsLowWhenSparse)
{
    Signature s(4, 256, 1);
    rr::sim::Rng rng(9);
    std::set<Addr> in;
    for (int i = 0; i < 16; ++i) {
        Addr line = (rng.next() & 0xfffff) * 32;
        s.insert(line);
        in.insert(line);
    }
    int fp = 0, probes = 0;
    for (int i = 0; i < 10000; ++i) {
        Addr line = (rng.next() & 0xfffff) * 32;
        if (in.count(line))
            continue;
        ++probes;
        if (s.mightContain(line))
            ++fp;
    }
    // 16 lines in 4 banks of 256 bits: expect well under 1% aliasing.
    EXPECT_LT(static_cast<double>(fp) / probes, 0.01);
}

TEST(Signature, SubLineAddressesAlias)
{
    Signature s(4, 256, 1);
    s.insert(0x1000);
    EXPECT_TRUE(s.mightContain(0x1010)); // same 32B line
    // Note: mightContain takes line addresses; offsets within a line
    // hash identically because the line offset bits are discarded.
}

TEST(Signature, PopulationGrowsPerBank)
{
    Signature s(4, 256, 1);
    s.insert(0x1000);
    EXPECT_LE(s.population(), 4u);
    EXPECT_GE(s.population(), 1u);
}

TEST(Signature, SizeMatchesPaper)
{
    Signature s(4, 256, 1);
    EXPECT_EQ(s.sizeBits(), 1024u); // 4 x 256-bit banks
}

TEST(Signature, DifferentSeedsHashDifferently)
{
    Signature a(1, 256, 1), b(1, 256, 2);
    // Insert the same lines; the bit patterns should diverge, which we
    // observe through differing membership of a random probe set.
    for (Addr l = 0; l < 64 * 32; l += 32) {
        a.insert(l);
        b.insert(l);
    }
    int differ = 0;
    for (Addr l = 1 << 20; l < (1 << 20) + 512 * 32; l += 32) {
        if (a.mightContain(l) != b.mightContain(l))
            ++differ;
    }
    EXPECT_GT(differ, 0);
}

TEST(Signature, InsertAndQueryAgreeAcrossClearCycles)
{
    // The line->H3-index cache must stay a pure memoization: across
    // many insert/clear() cycles, membership answers always come from
    // the current filter contents, with no stale hits after clear()
    // even for lines whose indexes are still cached.
    Signature s(4, 256, 1);
    rr::sim::Rng rng(21);
    for (int cycle = 0; cycle < 8; ++cycle) {
        std::vector<Addr> inserted;
        for (int i = 0; i < 40; ++i) {
            // Recycle a small line pool so later cycles re-query lines
            // whose indexes were cached (and inserted) in earlier
            // cycles.
            Addr line = (rng.next() & 0x3ff) * 32;
            s.insert(line);
            inserted.push_back(line);
        }
        for (Addr line : inserted)
            EXPECT_TRUE(s.mightContain(line));
        s.clear();
        EXPECT_TRUE(s.empty());
        EXPECT_EQ(s.population(), 0u);
        // No stale hits: every previously inserted (and index-cached)
        // line must now miss.
        for (Addr line : inserted)
            EXPECT_FALSE(s.mightContain(line));
    }
}

TEST(Signature, IndexCacheConflictsDoNotChangeAnswers)
{
    // Lines that collide in the direct-mapped index cache (same slot,
    // different tags) must still hash to their own H3 indexes: an
    // uncached recomputation and a cache-thrashed query must agree.
    Signature cached(4, 256, 5);
    Signature reference(4, 256, 5);
    // 64-slot cache: addresses 64 lines apart share a slot.
    const Addr stride = 64 * 32;
    std::vector<Addr> lines;
    for (int i = 0; i < 32; ++i)
        lines.push_back(0x1000 + static_cast<Addr>(i) * stride);
    for (Addr line : lines) {
        cached.insert(line);
        reference.insert(line);
    }
    EXPECT_EQ(cached.population(), reference.population());
    // Thrash the cache slot between queries; answers must not change.
    for (Addr line : lines) {
        EXPECT_TRUE(cached.mightContain(line));
        cached.mightContain(line + stride * 1000); // evicts line's slot
        EXPECT_TRUE(cached.mightContain(line));
        EXPECT_EQ(cached.mightContain(line + 7 * stride),
                  reference.mightContain(line + 7 * stride));
    }
}

TEST(Signature, SaturatedSignatureStillHasNoFalseNegatives)
{
    Signature s(4, 256, 1);
    std::vector<Addr> lines;
    for (int i = 0; i < 2000; ++i) {
        Addr l = static_cast<Addr>(i) * 32;
        s.insert(l);
        lines.push_back(l);
    }
    for (Addr l : lines)
        EXPECT_TRUE(s.mightContain(l));
}

} // namespace
