/**
 * @file
 * Robustness fuzzing for the .rrlog ingestion path: thousands of
 * seeded random, truncated and bit-flipped inputs are fed to LogReader
 * (and to the fmt:: chunk-header / varint decoders directly) and the
 * only acceptable outcomes are success or a typed LogStoreError — no
 * crash, no assertion, no uncaught exception of any other kind. This
 * is the executable form of the reader's "never crash on a corrupt
 * file" contract.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rnr/format.hh"
#include "rnr/logstore.hh"
#include "sim/rng.hh"

namespace
{

using namespace rr;
namespace fmt = rr::rnr::fmt;

/** A small but representative valid file: 2 cores, several chunks. */
std::vector<std::uint8_t>
buildValidFile()
{
    rnr::RecordingMeta meta;
    meta.kernel = "fft";
    meta.cores = 2;
    meta.scale = 1;

    std::ostringstream os(std::ios::binary);
    rnr::WriterOptions opts;
    opts.chunkTargetBytes = 128; // force several data chunks
    rnr::LogWriter writer(os, meta, opts);

    std::uint64_t ts = 1;
    for (std::uint32_t i = 0; i < 24; ++i) {
        rnr::IntervalRecord iv;
        iv.entries.push_back(rnr::LogEntry::inorderBlock(10 + i));
        iv.entries.push_back(rnr::LogEntry::reorderedLoad(0x1234 + i));
        iv.entries.push_back(
            rnr::LogEntry::reorderedStore(64 * i, 7 * i, i % 3));
        iv.cisn = 3 * (i + 1);
        iv.timestamp = ts;
        ts += 1 + (i % 5);
        writer.append(i % 2, iv);
    }

    rnr::RecordingSummary summary;
    summary.totalInstructions = 424242;
    summary.cores.resize(2);
    summary.cores[0].intervals = 12;
    summary.cores[1].intervals = 12;
    writer.finish(summary);

    const std::string s = os.str();
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

void
writeBytes(const std::string &path, const std::vector<std::uint8_t> &b)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << path;
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
    ASSERT_TRUE(out.good()) << path;
}

/**
 * Run the full reader surface over one input. Success and
 * LogStoreError are the only acceptable outcomes; any other exception
 * escapes and fails the test, any memory error is caught by the
 * sanitizer build.
 */
void
exerciseReader(const std::string &path)
{
    try {
        rnr::LogReader reader(path);
        // Once construction (header + meta validation) succeeds, the
        // tolerant walkers are contractually no-throw on damage.
        EXPECT_NO_THROW({
            auto issues = reader.verify();
            (void)issues;
        });
        EXPECT_NO_THROW({
            auto rec = reader.recoverPrefix();
            (void)rec;
        });
        // The throwing walkers must fail only with LogStoreError.
        try {
            reader.info();
            auto logs = reader.readAll();
            (void)logs;
            auto s = reader.summary();
            (void)s;
        } catch (const rnr::LogStoreError &) {
        }
    } catch (const rnr::LogStoreError &) {
    }
}

TEST(LogStoreFuzz, MutatedAndTruncatedFilesNeverCrashTheReader)
{
    const std::vector<std::uint8_t> base = buildValidFile();
    ASSERT_GT(base.size(), fmt::kFileHeaderBytes);
    const std::string path =
        ::testing::TempDir() + "rr_logstore_fuzz.rrlog";

    sim::Rng rng(0xf22u);
    constexpr int kIterations = 4000;
    for (int it = 0; it < kIterations; ++it) {
        std::vector<std::uint8_t> bytes = base;
        switch (it % 3) {
          case 0: { // truncate anywhere, header included
            bytes.resize(rng.below(base.size() + 1));
            break;
          }
          case 1: { // flip 1..8 random bytes
            const std::uint64_t flips = 1 + rng.below(8);
            for (std::uint64_t f = 0; f < flips; ++f)
                bytes[rng.below(bytes.size())] ^=
                    static_cast<std::uint8_t>(1 + rng.below(255));
            break;
          }
          default: { // truncate AND corrupt the surviving prefix
            bytes.resize(1 + rng.below(base.size()));
            const std::uint64_t flips = 1 + rng.below(4);
            for (std::uint64_t f = 0; f < flips; ++f)
                bytes[rng.below(bytes.size())] ^=
                    static_cast<std::uint8_t>(1 + rng.below(255));
            break;
          }
        }
        writeBytes(path, bytes);
        exerciseReader(path);
    }
    std::remove(path.c_str());
}

TEST(LogStoreFuzz, PureGarbageFilesNeverCrashTheReader)
{
    const std::string path =
        ::testing::TempDir() + "rr_logstore_fuzz_garbage.rrlog";
    sim::Rng rng(99);
    constexpr int kIterations = 3000;
    for (int it = 0; it < kIterations; ++it) {
        std::vector<std::uint8_t> bytes(rng.below(512));
        for (auto &b : bytes)
            b = static_cast<std::uint8_t>(rng.below(256));
        // A fraction keeps the magic so garbage reaches deeper layers.
        if (bytes.size() >= 4 && it % 2 == 0) {
            bytes[0] = 'R';
            bytes[1] = 'R';
            bytes[2] = 'L';
            bytes[3] = 'G';
        }
        writeBytes(path, bytes);
        exerciseReader(path);
    }
    std::remove(path.c_str());
}

TEST(LogStoreFuzz, ChunkHeaderDecodeRejectsGarbageWithoutCrashing)
{
    sim::Rng rng(7);
    std::uint64_t accepted = 0;
    for (int it = 0; it < 2000; ++it) {
        std::uint8_t raw[fmt::kChunkHeaderBytes];
        for (auto &b : raw)
            b = static_cast<std::uint8_t>(rng.below(256));
        fmt::ChunkHeader h;
        if (fmt::ChunkHeader::decode(raw, h)) {
            ++accepted;
            // Anything decode accepts must carry a defined chunk type.
            EXPECT_GE(static_cast<int>(h.type),
                      static_cast<int>(fmt::ChunkType::Meta));
            EXPECT_LE(static_cast<int>(h.type),
                      static_cast<int>(fmt::ChunkType::End));
        }
    }
    // The trailing CRC makes random acceptance essentially impossible.
    EXPECT_EQ(accepted, 0u);

    // A well-formed header round-trips...
    fmt::ChunkHeader good;
    good.type = fmt::ChunkType::Data;
    good.core = 1;
    good.seq = 42;
    good.payloadBits = 1000;
    good.payloadCrc = 0xabcdef01u;
    auto enc = good.encode();
    fmt::ChunkHeader out;
    ASSERT_TRUE(fmt::ChunkHeader::decode(enc.data(), out));
    EXPECT_EQ(out.seq, 42u);
    // ...and any single bit flip is detected by the header CRC.
    for (std::size_t byte = 0; byte < enc.size(); ++byte) {
        auto bad = enc;
        bad[byte] ^= 0x10;
        EXPECT_FALSE(fmt::ChunkHeader::decode(bad.data(), out))
            << "flip at byte " << byte;
    }
}

TEST(LogStoreFuzz, BoundedVarintDecodeNeverReadsPastTheLimit)
{
    sim::Rng rng(13);
    for (int it = 0; it < 4000; ++it) {
        std::vector<std::uint8_t> bytes(1 + rng.below(24));
        for (auto &b : bytes)
            b = static_cast<std::uint8_t>(rng.below(256));
        const std::uint64_t total_bits = bytes.size() * 8;
        const std::uint64_t limit = rng.below(total_bits + 1);
        rnr::BitReader r(bytes, total_bits);
        std::uint64_t value = 0;
        const bool ok = fmt::tryReadVarint(r, limit, value);
        // Bounded decode must respect the limit whether it succeeds or
        // gives up, and never touch bits past it.
        EXPECT_LE(r.position(), limit);
        if (ok) {
            // A successful decode re-encodes to the same group count.
            EXPECT_LE(fmt::varintBits(value), r.position());
        }
    }

    // Overlong encoding (10 groups, continuation still set) rejects.
    std::vector<std::uint8_t> overlong(fmt::kMaxVarintGroups + 2, 0x80);
    rnr::BitReader r(overlong, overlong.size() * 8);
    std::uint64_t value = 0;
    EXPECT_FALSE(
        fmt::tryReadVarint(r, overlong.size() * 8, value));

    // Exact-limit truncation: 7 value bits available but a group needs 8.
    std::vector<std::uint8_t> one = {0x01};
    rnr::BitReader r2(one, 8);
    EXPECT_FALSE(fmt::tryReadVarint(r2, 7, value));
    EXPECT_TRUE(fmt::tryReadVarint(r2, 8, value));
    EXPECT_EQ(value, 1u);
}

} // namespace
