#include <gtest/gtest.h>

#include "rnr/parallel_schedule.hh"

namespace
{

using namespace rr::rnr;

IntervalRecord
interval(std::uint64_t ts, std::uint64_t block,
         std::vector<IntervalDep> preds = {})
{
    IntervalRecord iv;
    iv.entries.push_back(LogEntry::inorderBlock(block));
    iv.timestamp = ts;
    iv.predecessors = std::move(preds);
    return iv;
}

ReplayCostModel
unitCost()
{
    ReplayCostModel m;
    m.replayIpc = 1.0;
    m.interruptCost = 0;
    m.perEntryCost = 0;
    m.perReorderedCost = 0;
    m.perIntervalCost = 0;
    return m;
}

TEST(ParallelSchedule, IndependentCoresRunConcurrently)
{
    std::vector<CoreLog> logs(2);
    logs[0].intervals.push_back(interval(1, 100));
    logs[1].intervals.push_back(interval(2, 100));
    const auto s = buildParallelSchedule(logs, unitCost());
    EXPECT_EQ(s.totalWork, 200u);
    EXPECT_EQ(s.makespan, 100u); // fully parallel
    EXPECT_DOUBLE_EQ(s.speedup(), 2.0);
    EXPECT_EQ(s.edges, 0u);
}

TEST(ParallelSchedule, EdgesSerialize)
{
    std::vector<CoreLog> logs(2);
    logs[0].intervals.push_back(interval(1, 100));
    logs[1].intervals.push_back(interval(2, 100, {{0, 0}}));
    const auto s = buildParallelSchedule(logs, unitCost());
    EXPECT_EQ(s.makespan, 200u); // chained by the edge
    EXPECT_EQ(s.edges, 1u);
}

TEST(ParallelSchedule, SameCoreChainIsImplicit)
{
    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(interval(1, 50));
    logs[0].intervals.push_back(interval(2, 70));
    const auto s = buildParallelSchedule(logs, unitCost());
    EXPECT_EQ(s.makespan, 120u);
}

TEST(ParallelSchedule, DiamondDependency)
{
    // c0: A (ts1). c1: B after A (ts2). c2: C after A (ts3).
    // c0: D after B and C (ts4, second interval of core 0).
    std::vector<CoreLog> logs(3);
    logs[0].intervals.push_back(interval(1, 100));                // A
    logs[1].intervals.push_back(interval(2, 30, {{0, 0}}));       // B
    logs[2].intervals.push_back(interval(3, 60, {{0, 0}}));       // C
    logs[0].intervals.push_back(interval(4, 10, {{1, 0}, {2, 0}})); // D
    const auto s = buildParallelSchedule(logs, unitCost());
    // A: 0-100, B: 100-130, C: 100-160, D: 160-170.
    EXPECT_EQ(s.makespan, 170u);
    EXPECT_EQ(s.totalWork, 200u);
}

TEST(ParallelSchedule, OrderIsTopological)
{
    std::vector<CoreLog> logs(2);
    logs[0].intervals.push_back(interval(1, 100));
    logs[1].intervals.push_back(interval(2, 1, {{0, 0}}));
    logs[0].intervals.push_back(interval(3, 1));
    const auto s = buildParallelSchedule(logs, unitCost());
    // Walk the order; maintain executed set and check preds.
    std::vector<std::uint32_t> done(2, 0);
    for (const auto &node : s.order) {
        const auto &iv = logs[node.core].intervals[node.index];
        EXPECT_EQ(done[node.core], node.index);
        for (const auto &d : iv.predecessors)
            EXPECT_GT(done[d.core], d.isn);
        ++done[node.core];
    }
}

TEST(ParallelSchedule, CostModelComponents)
{
    ReplayCostModel m;
    m.replayIpc = 2.0;
    m.interruptCost = 10;
    m.perEntryCost = 1;
    m.perReorderedCost = 5;
    m.perIntervalCost = 100;
    IntervalRecord iv;
    iv.entries.push_back(LogEntry::inorderBlock(20)); // 10 + 10 + 1
    iv.entries.push_back(LogEntry::reorderedLoad(1)); // 5 + 1
    EXPECT_EQ(intervalReplayCost(iv, m), 100u + 21 + 6);
}

TEST(ParallelSchedule, EmptyLogsProduceEmptySchedule)
{
    const auto none = buildParallelSchedule({}, unitCost());
    EXPECT_EQ(none.order.size(), 0u);
    EXPECT_EQ(none.makespan, 0u);
    EXPECT_EQ(none.totalWork, 0u);
    EXPECT_DOUBLE_EQ(none.speedup(), 1.0);

    // Cores that recorded nothing are equally legal.
    std::vector<CoreLog> logs(4);
    const auto s = buildParallelSchedule(logs, unitCost());
    EXPECT_EQ(s.order.size(), 0u);
    EXPECT_EQ(s.makespan, 0u);
    EXPECT_DOUBLE_EQ(s.speedup(), 1.0);
}

TEST(ParallelSchedule, SingleIntervalHasNoParallelism)
{
    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(interval(1, 42));
    const auto s = buildParallelSchedule(logs, unitCost());
    ASSERT_EQ(s.order.size(), 1u);
    EXPECT_EQ(s.makespan, 42u);
    EXPECT_EQ(s.totalWork, 42u);
    EXPECT_DOUBLE_EQ(s.speedup(), 1.0);
    EXPECT_EQ(s.order[0].start, 0u);
    EXPECT_EQ(s.order[0].finish, 42u);
}

TEST(ParallelSchedule, FullySerializedChainHasSpeedupOne)
{
    // A cross-core dependency chain c0 -> c1 -> c2 -> c0: every
    // interval waits for the previous one, so the "parallel" schedule
    // degenerates to sequential replay exactly.
    std::vector<CoreLog> logs(3);
    logs[0].intervals.push_back(interval(1, 10));
    logs[1].intervals.push_back(interval(2, 20, {{0, 0}}));
    logs[2].intervals.push_back(interval(3, 30, {{1, 0}}));
    logs[0].intervals.push_back(interval(4, 40, {{2, 0}}));
    const auto s = buildParallelSchedule(logs, unitCost());
    EXPECT_EQ(s.totalWork, 100u);
    EXPECT_EQ(s.makespan, 100u);
    EXPECT_DOUBLE_EQ(s.speedup(), 1.0);
    EXPECT_EQ(s.edges, 3u);
}

TEST(ParallelSchedule, PatchedStoreDependencySerializesIntervals)
{
    // Two cores whose single intervals would otherwise overlap
    // perfectly; core 1 reads a word core 0 only publishes when its
    // perform interval ends (a PatchedStore), so the recorder emitted
    // a cross-core edge — the schedule must not overlap them.
    IntervalRecord producer;
    producer.entries.push_back(LogEntry::inorderBlock(100));
    producer.entries.push_back(LogEntry::patchedStore(0x80, 7));
    producer.timestamp = 1;

    IntervalRecord consumer;
    consumer.entries.push_back(LogEntry::inorderBlock(100));
    consumer.timestamp = 2;
    consumer.predecessors = {{0, 0}};

    std::vector<CoreLog> logs(2);
    logs[0].intervals.push_back(producer);
    logs[1].intervals.push_back(consumer);
    const auto with_dep = buildParallelSchedule(logs, unitCost());
    EXPECT_EQ(with_dep.makespan, with_dep.totalWork)
        << "dependent intervals must not overlap";
    EXPECT_DOUBLE_EQ(with_dep.speedup(), 1.0);

    // Control: drop the edge and the same two intervals overlap.
    logs[1].intervals[0].predecessors.clear();
    const auto without = buildParallelSchedule(logs, unitCost());
    EXPECT_LT(without.makespan, without.totalWork);
    EXPECT_GT(without.speedup(), 1.5);
}

TEST(ParallelScheduleDeathTest, EdgeEscapingLogsIsRejected)
{
    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(interval(1, 10, {{0, 5}}));
    EXPECT_DEATH(buildParallelSchedule(logs, unitCost()), "escapes");
}

} // namespace
