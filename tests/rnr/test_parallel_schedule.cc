#include <gtest/gtest.h>

#include "rnr/parallel_schedule.hh"

namespace
{

using namespace rr::rnr;

IntervalRecord
interval(std::uint64_t ts, std::uint64_t block,
         std::vector<IntervalDep> preds = {})
{
    IntervalRecord iv;
    iv.entries.push_back(LogEntry::inorderBlock(block));
    iv.timestamp = ts;
    iv.predecessors = std::move(preds);
    return iv;
}

ReplayCostModel
unitCost()
{
    ReplayCostModel m;
    m.replayIpc = 1.0;
    m.interruptCost = 0;
    m.perEntryCost = 0;
    m.perReorderedCost = 0;
    m.perIntervalCost = 0;
    return m;
}

TEST(ParallelSchedule, IndependentCoresRunConcurrently)
{
    std::vector<CoreLog> logs(2);
    logs[0].intervals.push_back(interval(1, 100));
    logs[1].intervals.push_back(interval(2, 100));
    const auto s = buildParallelSchedule(logs, unitCost());
    EXPECT_EQ(s.totalWork, 200u);
    EXPECT_EQ(s.makespan, 100u); // fully parallel
    EXPECT_DOUBLE_EQ(s.speedup(), 2.0);
    EXPECT_EQ(s.edges, 0u);
}

TEST(ParallelSchedule, EdgesSerialize)
{
    std::vector<CoreLog> logs(2);
    logs[0].intervals.push_back(interval(1, 100));
    logs[1].intervals.push_back(interval(2, 100, {{0, 0}}));
    const auto s = buildParallelSchedule(logs, unitCost());
    EXPECT_EQ(s.makespan, 200u); // chained by the edge
    EXPECT_EQ(s.edges, 1u);
}

TEST(ParallelSchedule, SameCoreChainIsImplicit)
{
    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(interval(1, 50));
    logs[0].intervals.push_back(interval(2, 70));
    const auto s = buildParallelSchedule(logs, unitCost());
    EXPECT_EQ(s.makespan, 120u);
}

TEST(ParallelSchedule, DiamondDependency)
{
    // c0: A (ts1). c1: B after A (ts2). c2: C after A (ts3).
    // c0: D after B and C (ts4, second interval of core 0).
    std::vector<CoreLog> logs(3);
    logs[0].intervals.push_back(interval(1, 100));                // A
    logs[1].intervals.push_back(interval(2, 30, {{0, 0}}));       // B
    logs[2].intervals.push_back(interval(3, 60, {{0, 0}}));       // C
    logs[0].intervals.push_back(interval(4, 10, {{1, 0}, {2, 0}})); // D
    const auto s = buildParallelSchedule(logs, unitCost());
    // A: 0-100, B: 100-130, C: 100-160, D: 160-170.
    EXPECT_EQ(s.makespan, 170u);
    EXPECT_EQ(s.totalWork, 200u);
}

TEST(ParallelSchedule, OrderIsTopological)
{
    std::vector<CoreLog> logs(2);
    logs[0].intervals.push_back(interval(1, 100));
    logs[1].intervals.push_back(interval(2, 1, {{0, 0}}));
    logs[0].intervals.push_back(interval(3, 1));
    const auto s = buildParallelSchedule(logs, unitCost());
    // Walk the order; maintain executed set and check preds.
    std::vector<std::uint32_t> done(2, 0);
    for (const auto &node : s.order) {
        const auto &iv = logs[node.core].intervals[node.index];
        EXPECT_EQ(done[node.core], node.index);
        for (const auto &d : iv.predecessors)
            EXPECT_GT(done[d.core], d.isn);
        ++done[node.core];
    }
}

TEST(ParallelSchedule, CostModelComponents)
{
    ReplayCostModel m;
    m.replayIpc = 2.0;
    m.interruptCost = 10;
    m.perEntryCost = 1;
    m.perReorderedCost = 5;
    m.perIntervalCost = 100;
    IntervalRecord iv;
    iv.entries.push_back(LogEntry::inorderBlock(20)); // 10 + 10 + 1
    iv.entries.push_back(LogEntry::reorderedLoad(1)); // 5 + 1
    EXPECT_EQ(intervalReplayCost(iv, m), 100u + 21 + 6);
}

TEST(ParallelScheduleDeathTest, EdgeEscapingLogsIsRejected)
{
    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(interval(1, 10, {{0, 5}}));
    EXPECT_DEATH(buildParallelSchedule(logs, unitCost()), "escapes");
}

} // namespace
