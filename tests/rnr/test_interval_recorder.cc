#include <gtest/gtest.h>

#include "rnr/interval_recorder.hh"

namespace
{

using namespace rr::rnr;
using rr::mem::AccessKind;
using rr::mem::SnoopEvent;
using rr::mem::StampClock;
using rr::sim::RecorderConfig;
using rr::sim::RecorderMode;

class IntervalRecorderTest : public ::testing::Test
{
  protected:
    IntervalRecorder
    make(RecorderMode mode, std::uint64_t max_interval = 0)
    {
        RecorderConfig cfg;
        cfg.mode = mode;
        cfg.maxIntervalInstructions = max_interval;
        return IntervalRecorder(0, cfg, clock, "test");
    }

    SnoopEvent
    snoop(rr::sim::Addr line, bool is_write)
    {
        SnoopEvent ev{};
        ev.requester = 1;
        ev.lineAddr = rr::sim::lineAddr(line);
        ev.isWrite = is_write;
        ev.stamp = clock.next();
        return ev;
    }

    StampClock clock;
};

TEST_F(IntervalRecorderTest, SameIntervalAccessIsInOrder)
{
    auto r = make(RecorderMode::Base);
    auto ps = r.notePerform(AccessKind::Load, 0x1000);
    r.countMem(AccessKind::Load, 0x1000, 5, 0, 2, ps, 10);
    r.finish(20);
    const CoreLog &log = r.log();
    ASSERT_EQ(log.intervals.size(), 1u);
    ASSERT_EQ(log.intervals[0].entries.size(), 1u);
    // 2 non-mem + the load itself = block of 3.
    EXPECT_EQ(log.intervals[0].entries[0], LogEntry::inorderBlock(3));
}

TEST_F(IntervalRecorderTest, ConflictingWriteSnoopTerminatesInterval)
{
    auto r = make(RecorderMode::Base);
    auto ps = r.notePerform(AccessKind::Load, 0x1000);
    r.onSnoop(snoop(0x1000, true)); // write to a read line: conflict
    EXPECT_EQ(r.cisn(), 1u);
    r.countMem(AccessKind::Load, 0x1000, 5, 0, 0, ps, 10);
    r.finish(20);
    // Base: PISN != CISN -> reordered load with its value.
    const CoreLog &log = r.log();
    ASSERT_EQ(log.intervals.size(), 2u);
    EXPECT_EQ(log.intervals[1].entries[0], LogEntry::reorderedLoad(5));
}

TEST_F(IntervalRecorderTest, ReadSnoopConflictsOnlyWithWrites)
{
    auto r = make(RecorderMode::Base);
    r.notePerform(AccessKind::Load, 0x1000);
    r.onSnoop(snoop(0x1000, false)); // read-read: no dependence
    EXPECT_EQ(r.cisn(), 0u);
    r.notePerform(AccessKind::Store, 0x2000);
    r.onSnoop(snoop(0x2000, false)); // read of a written line: conflict
    EXPECT_EQ(r.cisn(), 1u);
}

TEST_F(IntervalRecorderTest, NonConflictingSnoopDoesNotTerminate)
{
    auto r = make(RecorderMode::Base);
    r.notePerform(AccessKind::Load, 0x1000);
    r.onSnoop(snoop(0x9000, true));
    EXPECT_EQ(r.cisn(), 0u);
}

TEST_F(IntervalRecorderTest, OptMovesUnobservedAccessAcrossIntervals)
{
    auto r = make(RecorderMode::Opt);
    auto ps = r.notePerform(AccessKind::Load, 0x1000);
    // Terminate the interval via an unrelated conflict.
    r.notePerform(AccessKind::Store, 0x5000);
    r.onSnoop(snoop(0x5000, true));
    ASSERT_EQ(r.cisn(), 1u);
    // The 0x1000 load crosses intervals but nobody touched its line.
    r.countMem(AccessKind::Load, 0x1000, 5, 0, 0, ps, 10);
    r.finish(20);
    const auto &stats = r.stats();
    EXPECT_EQ(stats.counterValue("moved_across_intervals"), 1u);
    EXPECT_EQ(stats.counterValue("reordered_loads"), 0u);
}

TEST_F(IntervalRecorderTest, OptDetectsObservedAccessAsReordered)
{
    auto r = make(RecorderMode::Opt);
    auto ps = r.notePerform(AccessKind::Load, 0x1000);
    r.onSnoop(snoop(0x1000, true)); // conflicting: also bumps the table
    r.countMem(AccessKind::Load, 0x1000, 5, 0, 0, ps, 10);
    r.finish(20);
    EXPECT_EQ(r.stats().counterValue("reordered_loads"), 1u);
}

TEST_F(IntervalRecorderTest, OptMovedAccessEntersCurrentSignature)
{
    auto r = make(RecorderMode::Opt);
    auto ps = r.notePerform(AccessKind::Store, 0x1000);
    r.notePerform(AccessKind::Store, 0x5000);
    r.onSnoop(snoop(0x5000, true)); // terminate interval 0
    r.countMem(AccessKind::Store, 0x1000, 0, 9, 0, ps, 10); // moved
    // The moved store's line is now in interval 1's write signature: a
    // read snoop of it must terminate interval 1.
    r.onSnoop(snoop(0x1000, false));
    EXPECT_EQ(r.cisn(), 2u);
}

TEST_F(IntervalRecorderTest, ReorderedStoreCarriesOffsetAndValues)
{
    auto r = make(RecorderMode::Base);
    auto ps = r.notePerform(AccessKind::Store, 0x1008);
    r.onSnoop(snoop(0x1008, true));
    r.onSnoop(snoop(0x1008, true)); // second interval boundary...
    // (no conflict in interval 1: signature was cleared) -> only 1 term
    EXPECT_EQ(r.cisn(), 1u);
    r.countMem(AccessKind::Store, 0x1008, 0, 42, 0, ps, 10);
    r.finish(20);
    const CoreLog &log = r.log();
    const LogEntry &e = log.intervals[1].entries[0];
    EXPECT_EQ(e.kind, EntryKind::ReorderedStore);
    EXPECT_EQ(e.addr, 0x1008u);
    EXPECT_EQ(e.storeValue, 42u);
    EXPECT_EQ(e.offset, 1u);
}

TEST_F(IntervalRecorderTest, ReorderedAtomicCarriesBothValues)
{
    auto r = make(RecorderMode::Base);
    auto ps = r.notePerform(AccessKind::Fadd, 0x2000);
    r.onSnoop(snoop(0x2000, true));
    r.countMem(AccessKind::Fadd, 0x2000, 7, 12, 0, ps, 10);
    r.finish(20);
    const LogEntry &e = r.log().intervals[1].entries[0];
    EXPECT_EQ(e.kind, EntryKind::ReorderedAtomic);
    EXPECT_EQ(e.loadValue, 7u);
    EXPECT_EQ(e.storeValue, 12u);
}

TEST_F(IntervalRecorderTest, AtomicPerformInsertsBothSignatures)
{
    auto r = make(RecorderMode::Base);
    r.notePerform(AccessKind::Xchg, 0x2000);
    r.onSnoop(snoop(0x2000, false)); // read snoop vs write signature
    EXPECT_EQ(r.cisn(), 1u);
}

TEST_F(IntervalRecorderTest, MaxIntervalSizeTerminates)
{
    auto r = make(RecorderMode::Base, 10);
    for (int i = 0; i < 3; ++i) {
        auto ps = r.notePerform(AccessKind::Load, 0x1000 + i * 64);
        r.countMem(AccessKind::Load, 0x1000 + i * 64, 0, 0, 3, ps, 5);
    }
    // 3 accesses x (3 nmi + 1) = 12 instructions >= 10 at the third.
    EXPECT_EQ(r.cisn(), 1u);
    r.finish(20);
    EXPECT_EQ(r.stats().counterValue("terminations_maxsize"), 1u);
}

TEST_F(IntervalRecorderTest, NmiCountsTowardMaxInterval)
{
    auto r = make(RecorderMode::Base, 30);
    r.countNmi(15, 1);
    EXPECT_EQ(r.cisn(), 0u);
    r.countNmi(15, 2);
    EXPECT_EQ(r.cisn(), 1u);
}

TEST_F(IntervalRecorderTest, BlocksSplitAroundReorderedAccesses)
{
    auto r = make(RecorderMode::Base);
    // Two in-order, one reordered, two in-order (paper Fig 4e/4f).
    auto ps1 = r.notePerform(AccessKind::Load, 0x100);
    r.countMem(AccessKind::Load, 0x100, 0, 0, 1, ps1, 1);
    auto ps2 = r.notePerform(AccessKind::Load, 0x200);
    r.onSnoop(snoop(0x200, true));
    r.countMem(AccessKind::Load, 0x200, 9, 0, 0, ps2, 2);
    auto ps3 = r.notePerform(AccessKind::Load, 0x300);
    r.countMem(AccessKind::Load, 0x300, 0, 0, 1, ps3, 3);
    r.finish(9);

    const CoreLog &log = r.log();
    // Interval 0: block(2). Interval 1: reordered load, block(2).
    ASSERT_EQ(log.intervals.size(), 2u);
    ASSERT_EQ(log.intervals[0].entries.size(), 1u);
    EXPECT_EQ(log.intervals[0].entries[0], LogEntry::inorderBlock(2));
    ASSERT_EQ(log.intervals[1].entries.size(), 2u);
    EXPECT_EQ(log.intervals[1].entries[0], LogEntry::reorderedLoad(9));
    EXPECT_EQ(log.intervals[1].entries[1], LogEntry::inorderBlock(2));
}

TEST_F(IntervalRecorderTest, TimestampsStrictlyIncrease)
{
    auto r = make(RecorderMode::Base, 2);
    for (int i = 0; i < 5; ++i)
        r.countNmi(2, i);
    r.finish(10);
    const CoreLog &log = r.log();
    ASSERT_GE(log.intervals.size(), 2u);
    for (std::size_t i = 1; i < log.intervals.size(); ++i)
        EXPECT_GT(log.intervals[i].timestamp,
                  log.intervals[i - 1].timestamp);
}

TEST_F(IntervalRecorderTest, EmptyFinishProducesEmptyLog)
{
    auto r = make(RecorderMode::Base);
    r.finish(5);
    EXPECT_TRUE(r.log().intervals.empty());
}

TEST_F(IntervalRecorderTest, DirectoryEvictionBumpForcesReorder)
{
    RecorderConfig cfg;
    cfg.mode = RecorderMode::Opt;
    cfg.directoryEvictionBump = true;
    IntervalRecorder r(0, cfg, clock, "dir");
    auto ps = r.notePerform(AccessKind::Load, 0x1000);
    // Terminate the interval (unrelated) so counting crosses intervals.
    r.notePerform(AccessKind::Load, 0x7000);
    r.onSnoop(snoop(0x7000, true));
    // The dirty eviction of the load's line removes snoop visibility;
    // the conservative bump must make the access count as reordered.
    r.onDirtyEviction(rr::sim::lineAddr(0x1000));
    r.countMem(AccessKind::Load, 0x1000, 3, 0, 0, ps, 8);
    r.finish(9);
    EXPECT_EQ(r.stats().counterValue("reordered_loads"), 1u);
}

TEST_F(IntervalRecorderTest, SnoopsAfterFinishAreIgnored)
{
    auto r = make(RecorderMode::Base);
    r.notePerform(AccessKind::Load, 0x1000);
    r.countNmi(1, 1);
    r.finish(2);
    const std::size_t n = r.log().intervals.size();
    r.onSnoop(snoop(0x1000, true));
    EXPECT_EQ(r.log().intervals.size(), n);
}

} // namespace
