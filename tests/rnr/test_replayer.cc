#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"

namespace
{

using namespace rr;
using namespace rr::rnr;
using isa::Assembler;
using isa::Program;

/** One interval with the given entries and timestamp. */
IntervalRecord
interval(std::vector<LogEntry> entries, std::uint64_t ts)
{
    IntervalRecord iv;
    iv.entries = std::move(entries);
    iv.timestamp = ts;
    return iv;
}

TEST(Replayer, SingleCoreInorderBlocks)
{
    Assembler a;
    a.li(3, 0x1000);
    a.li(4, 5);
    a.st(4, 3, 0);
    a.ld(5, 3, 0);
    a.halt();
    Program p = a.assemble();

    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(
        interval({LogEntry::inorderBlock(5)}, 1));

    Replayer rep(p, logs, mem::BackingStore{});
    auto res = rep.run();
    EXPECT_EQ(res.instructions, 5u);
    EXPECT_EQ(res.contexts[0].regs[5], 5u);
    EXPECT_EQ(res.memory.read64(0x1000), 5u);
    EXPECT_TRUE(res.contexts[0].halted);
    EXPECT_EQ(res.intervals, 1u);
}

TEST(Replayer, ReorderedLoadInjectsValue)
{
    Assembler a;
    a.li(3, 0x1000);
    a.ld(5, 3, 0); // memory holds 0; the log says the load saw 42
    a.halt();
    Program p = a.assemble();

    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(interval(
        {LogEntry::inorderBlock(1), LogEntry::reorderedLoad(42),
         LogEntry::inorderBlock(1)},
        1));

    Replayer rep(p, logs, mem::BackingStore{});
    auto res = rep.run();
    EXPECT_EQ(res.contexts[0].regs[5], 42u);
    EXPECT_EQ(res.instructions, 3u);
}

TEST(Replayer, DummyStoreSkipsWithoutWriting)
{
    Assembler a;
    a.li(3, 0x1000);
    a.li(4, 7);
    a.st(4, 3, 0); // skipped: its effect happened in an earlier interval
    a.halt();
    Program p = a.assemble();

    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(interval(
        {LogEntry::inorderBlock(2), LogEntry::dummyStore(),
         LogEntry::inorderBlock(1)},
        1));

    mem::BackingStore init;
    init.write64(0x1000, 99); // pre-existing value must survive
    Replayer rep(p, logs, std::move(init));
    auto res = rep.run();
    EXPECT_EQ(res.memory.read64(0x1000), 99u);
    EXPECT_TRUE(res.contexts[0].halted);
}

TEST(Replayer, PatchedStoreAppliesAtIntervalEnd)
{
    // Core 1 reads what core 0's patched store wrote, with the read's
    // interval ordered between core 0's two intervals.
    Assembler a;
    a.entry(0);
    a.li(3, 0x1000);
    a.li(4, 5);
    a.st(4, 3, 0);
    a.halt();
    a.entry(1);
    a.li(3, 0x1000);
    a.ld(5, 3, 0);
    a.halt();
    Program p = a.assemble();

    std::vector<CoreLog> logs(2);
    // Core 0, interval ts=1: first three instructions, store dummied,
    // patched store at end.
    logs[0].intervals.push_back(interval(
        {LogEntry::inorderBlock(2), LogEntry::patchedStore(0x1000, 5)},
        1));
    logs[0].intervals.push_back(interval(
        {LogEntry::dummyStore(), LogEntry::inorderBlock(1)}, 5));
    // Core 1 runs in between and must see the patched value.
    logs[1].intervals.push_back(
        interval({LogEntry::inorderBlock(3)}, 3));

    Replayer rep(p, logs, mem::BackingStore{});
    auto res = rep.run();
    EXPECT_EQ(res.contexts[1].regs[5], 5u);
}

TEST(Replayer, DummyAtomicInjectsOldValue)
{
    Assembler a;
    a.li(3, 0x1000);
    a.li(4, 10);
    a.fadd(5, 4, 3, 0);
    a.halt();
    Program p = a.assemble();

    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(interval(
        {LogEntry::inorderBlock(2), LogEntry::patchedStore(0x1000, 17),
         LogEntry::dummyAtomic(7), LogEntry::inorderBlock(1)},
        1));

    Replayer rep(p, logs, mem::BackingStore{});
    auto res = rep.run();
    EXPECT_EQ(res.contexts[0].regs[5], 7u); // injected old value
    EXPECT_EQ(res.memory.read64(0x1000), 17u);
}

TEST(Replayer, IntervalOrderFollowsTimestamps)
{
    // Two cores increment the same word; the recorded order decides the
    // final value trace. Use in-order blocks and interleave intervals.
    Assembler a;
    a.entry(0);
    a.li(3, 0x1000);
    a.ld(4, 3, 0);
    a.addi(4, 4, 1);
    a.st(4, 3, 0);
    a.halt();
    a.entry(1);
    a.li(3, 0x1000);
    a.ld(4, 3, 0);
    a.slli(4, 4, 1);
    a.st(4, 3, 0);
    a.halt();
    Program p = a.assemble();

    // Order A: core0 (+1) then core1 (*2): (0+1)*2 = 2.
    std::vector<CoreLog> logs(2);
    logs[0].intervals.push_back(
        interval({LogEntry::inorderBlock(5)}, 1));
    logs[1].intervals.push_back(
        interval({LogEntry::inorderBlock(5)}, 2));
    {
        Replayer rep(p, logs, mem::BackingStore{});
        EXPECT_EQ(rep.run().memory.read64(0x1000), 2u);
    }
    // Order B: core1 first: 0*2 + 1 = 1.
    logs[0].intervals[0].timestamp = 2;
    logs[1].intervals[0].timestamp = 1;
    {
        Replayer rep(p, logs, mem::BackingStore{});
        EXPECT_EQ(rep.run().memory.read64(0x1000), 1u);
    }
}

TEST(Replayer, LoadHookSeesAllLoadValues)
{
    Assembler a;
    a.li(3, 0x1000);
    a.li(4, 5);
    a.st(4, 3, 0);
    a.ld(5, 3, 0);  // in-order: reads 5
    a.ld(6, 3, 8);  // reordered: injected 77
    a.fadd(7, 4, 3, 0); // in-order atomic: old value 5
    a.halt();
    Program p = a.assemble();

    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(interval(
        {LogEntry::inorderBlock(4), LogEntry::reorderedLoad(77),
         LogEntry::inorderBlock(2)},
        1));

    Replayer rep(p, logs, mem::BackingStore{});
    std::vector<std::uint64_t> values;
    rep.setLoadHook([&](rr::sim::CoreId, std::uint64_t v) {
        values.push_back(v);
    });
    rep.run();
    ASSERT_EQ(values.size(), 3u);
    EXPECT_EQ(values[0], 5u);
    EXPECT_EQ(values[1], 77u);
    EXPECT_EQ(values[2], 5u);
}

TEST(Replayer, CostModelCountsComponents)
{
    Assembler a;
    a.li(3, 1);
    a.li(3, 2);
    a.halt();
    Program p = a.assemble();

    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(
        interval({LogEntry::inorderBlock(3)}, 1));

    Replayer rep(p, logs, mem::BackingStore{});
    ReplayCostModel m;
    m.replayIpc = 1.0;
    m.interruptCost = 100;
    m.perEntryCost = 10;
    m.perReorderedCost = 1000;
    m.perIntervalCost = 7;
    rep.setCostModel(m);
    auto res = rep.run();
    EXPECT_EQ(res.cost.userCycles, 3u);
    EXPECT_EQ(res.cost.osCycles, 100u + 10 + 7);
}

TEST(ReplayerDeathTest, UnpatchedLogRejected)
{
    Assembler a;
    a.halt();
    Program p = a.assemble();
    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(interval(
        {LogEntry::reorderedStore(0x100, 1, 1)}, 1));
    EXPECT_DEATH(Replayer(p, logs, mem::BackingStore{}), "patched");
}

TEST(ReplayerDivergenceTest, MisalignedReorderedLoadRejected)
{
    Assembler a;
    a.li(3, 1); // not a load
    a.halt();
    Program p = a.assemble();
    std::vector<CoreLog> logs(1);
    logs[0].intervals.push_back(
        interval({LogEntry::reorderedLoad(1)}, 1));
    Replayer rep(p, logs, mem::BackingStore{});
    try {
        rep.run();
        FAIL() << "expected ReplayDivergence";
    } catch (const ReplayDivergence &d) {
        const DivergenceReport &r = d.report();
        EXPECT_EQ(r.core, 0u);
        EXPECT_EQ(r.intervalIndex, 0u);
        EXPECT_EQ(r.entryIndex, 0u);
        EXPECT_EQ(r.entry.kind, EntryKind::ReorderedLoad);
        EXPECT_NE(r.expected.find("load"), std::string::npos);
        // The offending step itself is the newest ring-buffer entry.
        ASSERT_FALSE(r.recentSteps.empty());
        EXPECT_EQ(r.recentSteps.back().entry, 0u);
        EXPECT_NE(r.format().find("replay divergence at core 0"),
                  std::string::npos);
    }
}

} // namespace
