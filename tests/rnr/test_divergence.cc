#include <gtest/gtest.h>

#include <vector>

#include "machine/machine.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

struct RecordedForReplay
{
    workloads::Workload workload;
    mem::BackingStore initial;
    std::vector<rnr::CoreLog> patched;
};

RecordedForReplay
recordKernel(const std::string &name, std::uint32_t cores)
{
    workloads::WorkloadParams wp;
    wp.numThreads = cores;
    wp.scale = 1;
    RecordedForReplay r;
    r.workload = workloads::buildKernel(name, wp);
    sim::MachineConfig cfg;
    cfg.numCores = cores;
    std::vector<sim::RecorderConfig> pol(1);
    machine::Machine m(cfg, r.workload.program, pol);
    r.initial = m.initialMemory();
    const auto rec = m.run();
    for (const auto &log : rec.logs[0])
        r.patched.push_back(rnr::patch(log));
    return r;
}

TEST(Divergence, CorruptedLogEntryIsPreciselyLocated)
{
    RecordedForReplay r = recordKernel("fft", 2);

    // Corrupt core 1: prepend a log entry whose kind cannot match the
    // first instruction the core replays, so the very first step of its
    // first interval diverges.
    const sim::CoreId core = 1;
    const isa::Program &prog = r.workload.program;
    const isa::Instruction &first = prog.at(prog.entryFor(core));
    const rnr::LogEntry bogus = first.isStore()
                                    ? rnr::LogEntry::reorderedLoad(0xdead)
                                    : rnr::LogEntry::dummyStore();
    auto &entries = r.patched[core].intervals[0].entries;
    entries.insert(entries.begin(), bogus);

    rnr::Replayer rep(r.workload.program, r.patched, r.initial.clone());
    try {
        rep.run();
        FAIL() << "expected ReplayDivergence";
    } catch (const rnr::ReplayDivergence &d) {
        const rnr::DivergenceReport &rep_r = d.report();
        EXPECT_EQ(rep_r.core, core);
        EXPECT_EQ(rep_r.intervalIndex, 0u);
        EXPECT_EQ(rep_r.entryIndex, 0u);
        EXPECT_EQ(rep_r.entry.kind, bogus.kind);
        EXPECT_NE(rep_r.expected.find("instruction"), std::string::npos);
        EXPECT_NE(rep_r.actual.find("pc "), std::string::npos);

        // The ring buffer holds the offending step as the newest entry
        // of the diverging core.
        const rnr::ReplayStep *newest = nullptr;
        for (const rnr::ReplayStep &s : rep_r.recentSteps) {
            if (s.core == core)
                newest = &s;
        }
        ASSERT_NE(newest, nullptr);
        EXPECT_EQ(newest->interval, 0u);
        EXPECT_EQ(newest->entry, 0u);
        EXPECT_EQ(newest->kind, bogus.kind);

        const std::string text = rep_r.format();
        EXPECT_NE(text.find("replay divergence at core 1"),
                  std::string::npos);
        EXPECT_NE(text.find("last replay steps"), std::string::npos);
    }
}

TEST(Divergence, IntactLogReplaysWithoutThrowing)
{
    RecordedForReplay r = recordKernel("fft", 2);
    rnr::Replayer rep(r.workload.program, r.patched, r.initial.clone());
    EXPECT_NO_THROW(rep.run());
}

} // namespace
