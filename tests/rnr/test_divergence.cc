#include <gtest/gtest.h>

#include <vector>

#include "machine/machine.hh"
#include "rnr/divergence.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace rr;

struct RecordedForReplay
{
    workloads::Workload workload;
    mem::BackingStore initial;
    std::vector<rnr::CoreLog> patched;
};

RecordedForReplay
recordKernel(const std::string &name, std::uint32_t cores)
{
    workloads::WorkloadParams wp;
    wp.numThreads = cores;
    wp.scale = 1;
    RecordedForReplay r;
    r.workload = workloads::buildKernel(name, wp);
    sim::MachineConfig cfg;
    cfg.numCores = cores;
    std::vector<sim::RecorderConfig> pol(1);
    machine::Machine m(cfg, r.workload.program, pol);
    r.initial = m.initialMemory();
    const auto rec = m.run();
    for (const auto &log : rec.logs[0])
        r.patched.push_back(rnr::patch(log));
    return r;
}

TEST(Divergence, CorruptedLogEntryIsPreciselyLocated)
{
    RecordedForReplay r = recordKernel("fft", 2);

    // Corrupt core 1: prepend a log entry whose kind cannot match the
    // first instruction the core replays, so the very first step of its
    // first interval diverges.
    const sim::CoreId core = 1;
    const isa::Program &prog = r.workload.program;
    const isa::Instruction &first = prog.at(prog.entryFor(core));
    const rnr::LogEntry bogus = first.isStore()
                                    ? rnr::LogEntry::reorderedLoad(0xdead)
                                    : rnr::LogEntry::dummyStore();
    auto &entries = r.patched[core].intervals[0].entries;
    entries.insert(entries.begin(), bogus);

    rnr::Replayer rep(r.workload.program, r.patched, r.initial.clone());
    try {
        rep.run();
        FAIL() << "expected ReplayDivergence";
    } catch (const rnr::ReplayDivergence &d) {
        const rnr::DivergenceReport &rep_r = d.report();
        EXPECT_EQ(rep_r.core, core);
        EXPECT_EQ(rep_r.intervalIndex, 0u);
        EXPECT_EQ(rep_r.entryIndex, 0u);
        EXPECT_EQ(rep_r.entry.kind, bogus.kind);
        EXPECT_NE(rep_r.expected.find("instruction"), std::string::npos);
        EXPECT_NE(rep_r.actual.find("pc "), std::string::npos);

        // The ring buffer holds the offending step as the newest entry
        // of the diverging core.
        const rnr::ReplayStep *newest = nullptr;
        for (const rnr::ReplayStep &s : rep_r.recentSteps) {
            if (s.core == core)
                newest = &s;
        }
        ASSERT_NE(newest, nullptr);
        EXPECT_EQ(newest->interval, 0u);
        EXPECT_EQ(newest->entry, 0u);
        EXPECT_EQ(newest->kind, bogus.kind);

        const std::string text = rep_r.format();
        EXPECT_NE(text.find("replay divergence at core 1"),
                  std::string::npos);
        EXPECT_NE(text.find("last replay steps"), std::string::npos);
    }
}

TEST(Divergence, IntactLogReplaysWithoutThrowing)
{
    RecordedForReplay r = recordKernel("fft", 2);
    rnr::Replayer rep(r.workload.program, r.patched, r.initial.clone());
    EXPECT_NO_THROW(rep.run());
}

// Golden-text rendering: the report format is part of the tool-facing
// robustness surface (operators diff and grep these), so lock it down
// byte for byte rather than substring-matching.
TEST(Divergence, ReportRendersGoldenText)
{
    rnr::DivergenceReport r;
    r.core = 1;
    r.intervalIndex = 3;
    r.entryIndex = 2;
    r.pc = 77;
    r.entry = rnr::LogEntry::reorderedStore(0x40, 123, 1);
    r.expected = "store to word 0x40";
    r.actual = "load instruction at pc 77";
    r.timestamp = 99;
    r.orderPosition = 12;
    r.predecessors = {{0, 5}, {2, 9}};

    rnr::ReplayStep s0;
    s0.core = 0;
    s0.interval = 1;
    s0.entry = 0;
    s0.kind = rnr::EntryKind::InorderBlock;
    s0.pc = 10;
    s0.value = 4;
    s0.addr = 0;
    rnr::ReplayStep s1;
    s1.core = 1;
    s1.interval = 3;
    s1.entry = 2;
    s1.kind = rnr::EntryKind::ReorderedStore;
    s1.pc = 77;
    s1.value = 123;
    s1.addr = 0x40;
    r.recentSteps = {s0, s1};

    const char *golden =
        "replay divergence at core 1, interval 3 (timestamp 99, "
        "replay position 12), entry 2, pc 77\n"
        "  log entry: ReorderedStore addr=0x40 value=123\n"
        "  expected: store to word 0x40\n"
        "  actual:   load instruction at pc 77\n"
        "  interval ordering: after core0#5 core2#9\n"
        "  last replay steps (oldest first):\n"
        "    core 0 iv 1 entry 0 InorderBlock    pc=10 value=4 "
        "addr=0x0\n"
        "    core 1 iv 3 entry 2 ReorderedStore  pc=77 value=123 "
        "addr=0x40\n";
    EXPECT_EQ(r.format(), golden);
}

TEST(Divergence, MinimalReportRendersGoldenText)
{
    rnr::DivergenceReport r;
    r.core = 0;
    r.pc = 5;
    r.entry = rnr::LogEntry::reorderedAtomic(0x80, 7, 9, 0);
    r.expected = "atomic";
    r.actual = "store";
    r.timestamp = 1;

    const char *golden =
        "replay divergence at core 0, interval 0 (timestamp 1, "
        "replay position 0), entry 0, pc 5\n"
        "  log entry: ReorderedAtomic addr=0x80 old=7 new=9\n"
        "  expected: atomic\n"
        "  actual:   store\n";
    EXPECT_EQ(r.format(), golden);
}

} // namespace
