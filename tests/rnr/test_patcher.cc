#include <gtest/gtest.h>

#include "rnr/patcher.hh"

namespace
{

using namespace rr::rnr;

TEST(Patcher, AlreadyPatchedLogIsRecognized)
{
    CoreLog log;
    IntervalRecord iv;
    iv.entries.push_back(LogEntry::inorderBlock(5));
    iv.entries.push_back(LogEntry::reorderedLoad(1));
    log.intervals.push_back(iv);
    EXPECT_TRUE(isPatched(log));
}

TEST(Patcher, ReorderedStoreNeedsPatching)
{
    CoreLog log;
    log.intervals.emplace_back();
    log.intervals.emplace_back();
    log.intervals[1].entries.push_back(
        LogEntry::reorderedStore(0x100, 9, 1));
    EXPECT_FALSE(isPatched(log));
}

TEST(Patcher, MovesStoreToPerformInterval)
{
    CoreLog log;
    log.intervals.resize(3);
    log.intervals[0].entries.push_back(LogEntry::inorderBlock(4));
    log.intervals[2].entries.push_back(
        LogEntry::reorderedStore(0x100, 9, 2));
    log.intervals[2].entries.push_back(LogEntry::inorderBlock(1));

    const CoreLog out = patch(log);
    EXPECT_TRUE(isPatched(out));
    // The store's memory effect lands at the END of interval 0.
    ASSERT_EQ(out.intervals[0].entries.size(), 2u);
    EXPECT_EQ(out.intervals[0].entries[1],
              LogEntry::patchedStore(0x100, 9));
    // A dummy remains at the counting site.
    EXPECT_EQ(out.intervals[2].entries[0], LogEntry::dummyStore());
    EXPECT_EQ(out.intervals[2].entries[1], LogEntry::inorderBlock(1));
}

TEST(Patcher, AtomicSplitsIntoPatchedStoreAndDummyAtomic)
{
    CoreLog log;
    log.intervals.resize(2);
    log.intervals[1].entries.push_back(
        LogEntry::reorderedAtomic(0x200, 11, 22, 1));
    const CoreLog out = patch(log);
    ASSERT_EQ(out.intervals[0].entries.size(), 1u);
    EXPECT_EQ(out.intervals[0].entries[0],
              LogEntry::patchedStore(0x200, 22)); // the NEW value
    EXPECT_EQ(out.intervals[1].entries[0], LogEntry::dummyAtomic(11));
}

TEST(Patcher, MultipleStoresKeepCountingOrder)
{
    CoreLog log;
    log.intervals.resize(3);
    log.intervals[1].entries.push_back(
        LogEntry::reorderedStore(0x100, 1, 1));
    log.intervals[2].entries.push_back(
        LogEntry::reorderedStore(0x100, 2, 2));
    const CoreLog out = patch(log);
    // Both patched to interval 0, in counting (program) order.
    ASSERT_EQ(out.intervals[0].entries.size(), 2u);
    EXPECT_EQ(out.intervals[0].entries[0].storeValue, 1u);
    EXPECT_EQ(out.intervals[0].entries[1].storeValue, 2u);
}

TEST(Patcher, DoesNotTouchLoadsOrBlocks)
{
    CoreLog log;
    log.intervals.resize(2);
    log.intervals[0].entries.push_back(LogEntry::inorderBlock(9));
    log.intervals[1].entries.push_back(LogEntry::reorderedLoad(5));
    const CoreLog out = patch(log);
    EXPECT_EQ(out.intervals[0].entries, log.intervals[0].entries);
    EXPECT_EQ(out.intervals[1].entries, log.intervals[1].entries);
}

TEST(Patcher, PreservesFrames)
{
    CoreLog log;
    log.intervals.resize(2);
    log.intervals[0].cisn = 0;
    log.intervals[0].timestamp = 10;
    log.intervals[1].cisn = 1;
    log.intervals[1].timestamp = 20;
    log.intervals[1].entries.push_back(
        LogEntry::reorderedStore(0x100, 1, 1));
    const CoreLog out = patch(log);
    EXPECT_EQ(out.intervals[0].timestamp, 10u);
    EXPECT_EQ(out.intervals[1].timestamp, 20u);
}

TEST(PatcherDeathTest, OffsetEscapingLogIsRejected)
{
    CoreLog log;
    log.intervals.resize(1);
    log.intervals[0].entries.push_back(
        LogEntry::reorderedStore(0x100, 1, 1)); // offset 1 from interval 0
    EXPECT_DEATH(patch(log), "escapes");
}

} // namespace
