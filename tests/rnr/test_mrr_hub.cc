#include <gtest/gtest.h>

#include "rnr/mrr_hub.hh"

namespace
{

using namespace rr::rnr;
using rr::cpu::RetireInfo;
using rr::mem::AccessKind;
using rr::mem::PerformEvent;
using rr::mem::SnoopEvent;
using rr::mem::StampClock;
using rr::sim::RecorderConfig;
using rr::sim::RecorderMode;
using rr::sim::SeqNum;

class MrrHubTest : public ::testing::Test
{
  protected:
    MrrHubTest()
    {
        RecorderConfig base;
        base.mode = RecorderMode::Base;
        RecorderConfig opt;
        opt.mode = RecorderMode::Opt;
        hub = std::make_unique<MrrHub>(
            0, std::vector<RecorderConfig>{base, opt}, clock);
    }

    rr::isa::Instruction
    loadInst()
    {
        return {rr::isa::Opcode::Ld, 3, 4, 0, 0};
    }

    rr::isa::Instruction
    storeInst()
    {
        return {rr::isa::Opcode::St, 0, 4, 5, 0};
    }

    void
    perform(SeqNum seq, AccessKind kind, rr::sim::Addr addr,
            std::uint64_t lv = 0, std::uint64_t sv = 0)
    {
        hub->onPerform(PerformEvent{0, seq, kind, addr, lv, sv,
                                    clock.next(), 0});
    }

    void
    retire(SeqNum seq, bool is_mem, std::uint64_t load_value = 0)
    {
        hub->onRetire(RetireInfo{seq,
                                 0,
                                 is_mem ? rr::isa::Opcode::Ld
                                        : rr::isa::Opcode::Add,
                                 is_mem, load_value, 0});
    }

    StampClock clock;
    std::unique_ptr<MrrHub> hub;
};

TEST_F(MrrHubTest, CountsAfterPerformAndRetire)
{
    hub->onDispatchMem(0, loadInst(), 0);
    EXPECT_EQ(hub->occupancy(), 1u);
    perform(0, AccessKind::Load, 0x1000, 5);
    EXPECT_EQ(hub->occupancy(), 1u); // not retired yet
    retire(0, true);
    EXPECT_EQ(hub->occupancy(), 0u);
    EXPECT_EQ(hub->stats().counterValue("counted_mem"), 1u);
}

TEST_F(MrrHubTest, StorePerformAfterRetireAlsoCounts)
{
    hub->onDispatchMem(0, storeInst(), 0);
    retire(0, true);
    EXPECT_EQ(hub->occupancy(), 1u); // stores wait for perform
    perform(0, AccessKind::Store, 0x1000, 0, 9);
    EXPECT_EQ(hub->occupancy(), 0u);
}

TEST_F(MrrHubTest, HeadOfLineBlocking)
{
    hub->onDispatchMem(0, storeInst(), 0);
    hub->onDispatchMem(1, loadInst(), 0);
    perform(1, AccessKind::Load, 0x2000, 1);
    retire(0, true);
    retire(1, true);
    // The store at the head has not performed: nothing counts.
    EXPECT_EQ(hub->occupancy(), 2u);
    perform(0, AccessKind::Store, 0x1000, 0, 2);
    EXPECT_EQ(hub->occupancy(), 0u);
}

TEST_F(MrrHubTest, OutOfOrderPerformDetected)
{
    hub->onDispatchMem(0, storeInst(), 0);
    hub->onDispatchMem(1, loadInst(), 0);
    perform(1, AccessKind::Load, 0x2000, 1); // older store pending: OOO
    retire(0, true);
    retire(1, true);
    perform(0, AccessKind::Store, 0x1000, 0, 2); // in order at its turn
    EXPECT_EQ(hub->stats().counterValue("ooo_loads"), 1u);
    EXPECT_EQ(hub->stats().counterValue("ooo_stores"), 0u);
}

TEST_F(MrrHubTest, SquashFlushesYoungEntries)
{
    hub->onDispatchMem(0, loadInst(), 0);
    hub->onDispatchMem(5, loadInst(), 0);
    hub->onDispatchMem(9, loadInst(), 0);
    hub->onSquash(5); // seq > 5 dies
    EXPECT_EQ(hub->occupancy(), 2u);
    EXPECT_EQ(hub->stats().counterValue("squashed_entries"), 1u);
}

TEST_F(MrrHubTest, PerformForSquashedSeqIsIgnored)
{
    hub->onDispatchMem(0, loadInst(), 0);
    hub->onSquash(rr::sim::SeqNum(-2)); // nothing squashed (survivor big)
    hub->onSquash(0);                   // no-op: 0 survives
    hub->onDispatchMem(1, loadInst(), 0);
    hub->onSquash(0); // seq 1 dies
    perform(1, AccessKind::Load, 0x2000, 1);
    EXPECT_EQ(hub->stats().counterValue("squashed_performs"), 1u);
}

TEST_F(MrrHubTest, NmiGroupsCountAfterRetireWatermark)
{
    hub->onDispatchNmiGroup(14, 15); // 15 non-mem instrs ending at seq 14
    EXPECT_EQ(hub->occupancy(), 1u);
    retire(10, false);
    EXPECT_EQ(hub->occupancy(), 1u); // last instr (14) not yet retired
    retire(14, false);
    EXPECT_EQ(hub->occupancy(), 0u);
    EXPECT_EQ(hub->stats().counterValue("counted_nmi_groups"), 1u);
}

TEST_F(MrrHubTest, BackPressureAtCapacity)
{
    RecorderConfig tiny;
    tiny.mode = RecorderMode::Base;
    tiny.traqEntries = 2;
    MrrHub small(0, {tiny}, clock);
    EXPECT_TRUE(small.canDispatchMem());
    small.onDispatchMem(0, loadInst(), 0);
    small.onDispatchMem(1, loadInst(), 0);
    EXPECT_FALSE(small.canDispatchMem());
}

TEST_F(MrrHubTest, HaltFinalizesAllPolicies)
{
    hub->onDispatchMem(0, loadInst(), 3); // 3 non-mem before it
    perform(0, AccessKind::Load, 0x1000, 7);
    retire(0, true);
    hub->onHalted(100, 2); // 2 trailing non-mem (incl. HALT)
    for (std::size_t p = 0; p < hub->numPolicies(); ++p) {
        const CoreLog &log = hub->recorder(p).log();
        ASSERT_EQ(log.intervals.size(), 1u);
        ASSERT_EQ(log.intervals[0].entries.size(), 1u);
        // 3 nmi + load + 2 residual = 6 instructions.
        EXPECT_EQ(log.intervals[0].entries[0], LogEntry::inorderBlock(6));
    }
}

TEST_F(MrrHubTest, HaltWaitsForDrainingStores)
{
    hub->onDispatchMem(0, storeInst(), 0);
    retire(0, true);
    hub->onHalted(50, 1); // store still in the write buffer
    EXPECT_EQ(hub->recorder(0).log().intervals.size(), 0u);
    perform(0, AccessKind::Store, 0x1000, 0, 9); // drains now
    EXPECT_EQ(hub->recorder(0).log().intervals.size(), 1u);
}

TEST_F(MrrHubTest, PoliciesDivergeOnOptFiltering)
{
    // A load whose counting crosses an interval boundary with no
    // conflicting transaction on its own line: Base logs it reordered,
    // Opt does not.
    hub->onDispatchMem(0, loadInst(), 0);
    perform(0, AccessKind::Load, 0x1000, 5);
    hub->onDispatchMem(1, storeInst(), 0);
    perform(1, AccessKind::Store, 0x5000, 0, 1);
    // Conflicting snoop on the store's line terminates both policies'
    // intervals (and bumps Opt's table for 0x5000 only).
    SnoopEvent sn{};
    sn.requester = 1;
    sn.lineAddr = rr::sim::lineAddr(0x5000);
    sn.isWrite = true;
    sn.stamp = clock.next();
    hub->onSnoop(0, sn);
    retire(0, true);
    retire(1, true);
    hub->onHalted(10, 0);
    EXPECT_EQ(hub->recorder(0).stats().counterValue("reordered_loads"),
              1u); // Base
    EXPECT_EQ(hub->recorder(1).stats().counterValue("reordered_loads"),
              0u); // Opt moved it
    EXPECT_EQ(
        hub->recorder(1).stats().counterValue("moved_across_intervals"),
        1u);
}

TEST_F(MrrHubTest, ForwardedLoadPerformIsRecorded)
{
    hub->onDispatchMem(0, loadInst(), 0);
    hub->onForwardedLoadPerform(0, 0x3000, 99, clock.next(), 5);
    retire(0, true);
    hub->onHalted(10, 0);
    EXPECT_EQ(hub->stats().counterValue("forwarded_performs"), 1u);
    // The forwarded value is retained: force a reordered case elsewhere
    // to check value plumbing via the Base policy on conflict... here
    // simply ensure it counted in order.
    EXPECT_EQ(hub->recorder(0).stats().counterValue("counted_mem"), 1u);
}

TEST_F(MrrHubTest, SnoopsForOtherCoresIgnored)
{
    SnoopEvent other{};
    other.requester = 1;
    other.lineAddr = 0x1000;
    other.isWrite = true;
    other.stamp = clock.next();
    hub->onSnoop(3, other);
    EXPECT_EQ(hub->stats().counterValue("snoops_observed"), 0u);
}

TEST_F(MrrHubTest, OccupancySampling)
{
    hub->onDispatchMem(0, loadInst(), 0);
    hub->sampleOccupancy();
    hub->sampleOccupancy();
    EXPECT_EQ(hub->occupancyHistogram().total(), 2u);
    EXPECT_EQ(hub->occupancyHistogram().binCount(0), 2u);
}

} // namespace
