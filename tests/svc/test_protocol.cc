#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "svc/protocol.hh"

namespace
{

using namespace rr;
using svc::Json;
using svc::parseJson;
using svc::parseRequest;

Json
mustParse(const std::string &text)
{
    std::string error;
    auto v = parseJson(text, error);
    EXPECT_TRUE(v.has_value()) << text << " -> " << error;
    return v ? *v : Json();
}

TEST(ProtocolJson, ScalarRoundTrips)
{
    EXPECT_EQ(mustParse("null").kind(), Json::Kind::Null);
    EXPECT_TRUE(mustParse("true").asBool());
    EXPECT_FALSE(mustParse("false").asBool(true));
    EXPECT_EQ(mustParse("42").asInt(), 42);
    EXPECT_EQ(mustParse("-7").asInt(), -7);
    EXPECT_DOUBLE_EQ(mustParse("2.5").asDouble(), 2.5);
    EXPECT_DOUBLE_EQ(mustParse("1e3").asDouble(), 1000.0);
    EXPECT_EQ(mustParse("\"hi\"").asString(), "hi");
}

TEST(ProtocolJson, StringEscapes)
{
    EXPECT_EQ(mustParse(R"("a\"b\\c\/d\n\t")").asString(),
              "a\"b\\c/d\n\t");
    // \uXXXX including a surrogate pair -> UTF-8.
    EXPECT_EQ(mustParse(R"("\u0041")").asString(), "A");
    EXPECT_EQ(mustParse(R"("\u00e9")").asString(), "\xc3\xa9");
    EXPECT_EQ(mustParse(R"("\ud83d\ude00")").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(ProtocolJson, ContainersAndLookup)
{
    const Json v = mustParse(
        R"({"a":[1,2,3],"b":{"c":"x"},"n":null,"f":1.5})");
    EXPECT_TRUE(v.isObject());
    EXPECT_EQ(v.get("a").asArray().size(), 3u);
    EXPECT_EQ(v.get("a").asArray()[2].asInt(), 3);
    EXPECT_EQ(v.get("b").get("c").asString(), "x");
    EXPECT_TRUE(v.get("n").isNull());
    EXPECT_TRUE(v.get("missing").isNull());
    EXPECT_DOUBLE_EQ(v.get("f").asDouble(), 1.5);
}

TEST(ProtocolJson, DumpParsesBack)
{
    const std::string text =
        R"({"arr":[1,-2,true,null,"s"],"obj":{"k":"v \"q\""}})";
    const Json v = mustParse(text);
    const Json again = mustParse(v.dump());
    EXPECT_EQ(again.get("arr").asArray().size(), 5u);
    EXPECT_EQ(again.get("obj").get("k").asString(), "v \"q\"");
}

TEST(ProtocolJson, RejectsMalformed)
{
    const char *bad[] = {
        "",       "{",          "}",          "[1,",
        "{\"a\"", "{\"a\":}",   "tru",        "nul",
        "01",     "1.",         "\"\\q\"",    "\"unterminated",
        "[1 2]",  "{\"a\" 1}",  "{,}",        "\xff\xfe",
        "1 2",    "\"\\ud800\"" /* lone surrogate */,
    };
    for (const char *text : bad) {
        std::string error;
        EXPECT_FALSE(parseJson(text, error).has_value()) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(ProtocolJson, DepthLimit)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    std::string error;
    EXPECT_FALSE(parseJson(deep, error).has_value());
    EXPECT_NE(error.find("depth"), std::string::npos);
    // 16 levels under a 32 limit is fine.
    std::string ok = "1";
    for (int i = 0; i < 16; ++i)
        ok = "[" + ok + "]";
    EXPECT_TRUE(parseJson(ok, error).has_value()) << error;
}

TEST(ProtocolJson, QuoteEscapesControlBytes)
{
    const std::string quoted = svc::jsonQuote("a\"b\\c\x01\n");
    EXPECT_EQ(mustParse(quoted).asString(), "a\"b\\c\x01\n");
}

// --- requests ---------------------------------------------------------

TEST(ProtocolRequest, SubmitRecordRoundTrip)
{
    std::string error;
    auto r = parseRequest(
        R"({"op":"record","kernel":"fft","cores":4,"scale":2,)"
        R"("mode":"base","interval":1024,"deps":true,"out":"x.rrlog",)"
        R"("tenant":"alice","weight":7,"tag":"t1","timeout":2.5})",
        error);
    ASSERT_TRUE(r.has_value()) << error;
    EXPECT_EQ(r->op, svc::Request::Op::Submit);
    EXPECT_EQ(r->params.kind, svc::JobKind::Record);
    EXPECT_EQ(r->params.kernel, "fft");
    EXPECT_EQ(r->params.cores, 4u);
    EXPECT_EQ(r->params.scale, 2u);
    EXPECT_EQ(r->params.mode, rr::sim::RecorderMode::Base);
    EXPECT_EQ(r->params.intervalCap, 1024u);
    EXPECT_TRUE(r->params.deps);
    EXPECT_EQ(r->params.outFile, "x.rrlog");
    EXPECT_EQ(r->tenant, "alice");
    EXPECT_EQ(r->weight, 7u);
    EXPECT_EQ(r->tag, "t1");
    EXPECT_DOUBLE_EQ(r->timeoutSec, 2.5);
}

TEST(ProtocolRequest, ControlOps)
{
    std::string error;
    EXPECT_EQ(parseRequest(R"({"op":"ping"})", error)->op,
              svc::Request::Op::Ping);
    EXPECT_EQ(parseRequest(R"({"op":"status"})", error)->op,
              svc::Request::Op::Status);
    auto c = parseRequest(R"({"op":"cancel","job":9})", error);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->op, svc::Request::Op::Cancel);
    EXPECT_EQ(c->cancelJob, 9u);
    auto s =
        parseRequest(R"({"op":"shutdown","drain":false})", error);
    ASSERT_TRUE(s.has_value());
    EXPECT_FALSE(s->drain);
    EXPECT_TRUE(
        parseRequest(R"({"op":"shutdown"})", error)->drain);
}

TEST(ProtocolRequest, SemanticRejections)
{
    const char *bad[] = {
        R"({"op":"record"})",                      // no kernel
        R"({"op":"replay"})",                      // no file/kernel
        R"({"op":"verify"})",                      // no file
        R"({"op":"stats"})",                       // no file
        R"({"op":"cancel"})",                      // no job id
        R"({"op":"record","kernel":"fft","cores":0})",
        R"({"op":"record","kernel":"fft","cores":999})",
        R"({"op":"record","kernel":"fft","cores":-1})",
        // 2^32+1 and 2^32: must not wrap into range via uint32
        // truncation (4294967297 % 2^32 = 1, 4294967296 % 2^32 = 0).
        R"({"op":"record","kernel":"fft","cores":4294967297})",
        R"({"op":"replay","file":"a.rrlog","jobs":4294967296})",
        R"({"op":"replay","file":"a.rrlog","jobs":999})",
        R"({"op":"record","kernel":"fft","mode":"weird"})",
        R"({"op":"record","kernel":"fft","ingest":"weird"})",
        R"({"op":"nope"})",                        // unknown op
        R"({})",                                   // missing op
        R"({"op":"ping","tenant":""})",            // empty tenant
        R"({"op":"ping","timeout":-1})",           // bad timeout
        R"({"op":"ping","timeout":1e9})",          // bad timeout
        R"([1,2,3])",                              // not an object
    };
    for (const char *text : bad) {
        std::string error;
        EXPECT_FALSE(parseRequest(text, error).has_value()) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(ProtocolRequest, WeightClamped)
{
    std::string error;
    EXPECT_EQ(parseRequest(R"({"op":"ping","weight":0})", error)
                  ->weight,
              1u);
    EXPECT_EQ(parseRequest(R"({"op":"ping","weight":5000})", error)
                  ->weight,
              100u);
}

// --- event builders ---------------------------------------------------

TEST(ProtocolEvents, BuildersEmitParseableJson)
{
    const std::string events[] = {
        svc::eventAccepted(7, "tag with \"quotes\"", 3),
        svc::eventRejected(svc::ErrorCode::QueueFull, "full", "t"),
        svc::eventRunning(7, ""),
        svc::eventProgress(7, "t", "execute"),
        svc::eventCompleted(7, "t", "{\"x\":1}", 0.25),
        svc::eventFailed(7, "t", "MISMATCH", "boom\nnewline"),
        svc::eventCancelled(7, "t", "timeout"),
        svc::eventPong(),
        svc::eventStatus("{\"depth\":0}"),
        svc::eventShutdown(true),
    };
    for (const std::string &e : events) {
        const Json v = mustParse(e);
        EXPECT_TRUE(v.isObject()) << e;
        EXPECT_FALSE(v.get("event").asString().empty()) << e;
    }
    const Json done = mustParse(events[4]);
    EXPECT_EQ(done.get("result").get("x").asInt(), 1);
    EXPECT_EQ(mustParse(events[1]).get("error").asString(),
              "QUEUE_FULL");
    EXPECT_EQ(mustParse(events[6]).get("reason").asString(),
              "timeout");
}

// --- fuzz: the daemon must never crash on a malformed line ------------

TEST(ProtocolFuzz, RandomBytesNeverCrashTheParser)
{
    std::mt19937 rng(0xC0FFEEu);
    const char alphabet[] =
        "{}[]\",:0123456789.eE+-truefalsnul \\/\t\xff\x01\x80";
    for (int i = 0; i < 20000; ++i) {
        std::uniform_int_distribution<int> len(0, 64);
        std::uniform_int_distribution<int> pick(
            0, sizeof(alphabet) - 2);
        std::string text;
        const int n = len(rng);
        for (int j = 0; j < n; ++j)
            text += alphabet[static_cast<std::size_t>(pick(rng))];
        std::string error;
        auto v = parseJson(text, error);
        if (!v) {
            EXPECT_FALSE(error.empty());
        }
        error.clear();
        parseRequest(text, error); // must not crash either
    }
}

TEST(ProtocolFuzz, MutatedValidRequestsNeverCrash)
{
    const std::string seedReq =
        R"({"op":"replay","file":"a.rrlog","cores":8,"jobs":2,)"
        R"("tenant":"bob","weight":3,"tag":"x","timeout":1.5,)"
        R"("ingest":"mmap","allowPartial":true})";
    std::mt19937 rng(42);
    for (int i = 0; i < 20000; ++i) {
        std::string text = seedReq;
        // Truncate, flip, or insert — one mutation per iteration.
        std::uniform_int_distribution<int> kind(0, 2);
        std::uniform_int_distribution<std::size_t> pos(
            0, text.size() - 1);
        std::uniform_int_distribution<int> byte(0, 255);
        switch (kind(rng)) {
          case 0:
            text.resize(pos(rng));
            break;
          case 1:
            text[pos(rng)] = static_cast<char>(byte(rng));
            break;
          default:
            text.insert(pos(rng), 1, static_cast<char>(byte(rng)));
            break;
        }
        std::string error;
        parseRequest(text, error); // no crash, no hang
    }
}

} // namespace
