#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "svc/job_queue.hh"

namespace
{

using namespace rr::svc;
using Clock = std::chrono::steady_clock;

JobDesc
job(const std::string &tenant, const std::string &tag = "",
    std::uint64_t conn = 1)
{
    JobDesc d;
    d.tenant = tenant;
    d.tag = tag;
    d.conn = conn;
    d.params.kind = JobKind::Stats;
    d.params.file = "x.rrlog";
    return d;
}

Clock::time_point
soon()
{
    return Clock::now() + std::chrono::milliseconds(200);
}

TEST(JobQueue, AdmitAssignsMonotonicIdsAndDepth)
{
    JobQueue q;
    const auto a = q.admit(job("t"));
    const auto b = q.admit(job("t"));
    ASSERT_TRUE(a.admitted);
    ASSERT_TRUE(b.admitted);
    EXPECT_LT(a.jobId, b.jobId);
    EXPECT_EQ(a.depth, 1u);
    EXPECT_EQ(b.depth, 2u);
    EXPECT_EQ(q.depth(), 2u);
    EXPECT_EQ(q.tenantDepth("t"), 2u);
    EXPECT_EQ(q.tenantDepth("other"), 0u);
}

TEST(JobQueue, CapacityRejectionIsTypedAndCounted)
{
    JobQueue::Options opts;
    opts.capacity = 3;
    JobQueue q(opts);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(q.admit(job("t" + std::to_string(i))).admitted);
    const auto r = q.admit(job("t9"));
    EXPECT_FALSE(r.admitted);
    EXPECT_EQ(r.error, ErrorCode::QueueFull);
    EXPECT_EQ(q.counters().rejectedFull, 1u);
    EXPECT_EQ(q.counters().admitted, 3u);
    // Popping one frees a slot.
    ASSERT_TRUE(q.tryPop().has_value());
    EXPECT_TRUE(q.admit(job("t9")).admitted);
}

TEST(JobQueue, TenantQuotaRejectionIsTypedAndCounted)
{
    JobQueue::Options opts;
    opts.capacity = 100;
    opts.tenantQuota = 2;
    JobQueue q(opts);
    EXPECT_TRUE(q.admit(job("alice")).admitted);
    EXPECT_TRUE(q.admit(job("alice")).admitted);
    const auto r = q.admit(job("alice"));
    EXPECT_FALSE(r.admitted);
    EXPECT_EQ(r.error, ErrorCode::QuotaExceeded);
    // The quota is per tenant: bob still gets in.
    EXPECT_TRUE(q.admit(job("bob")).admitted);
    EXPECT_EQ(q.counters().rejectedQuota, 1u);
}

TEST(JobQueue, FifoWithinTenant)
{
    JobQueue q;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 10; ++i)
        ids.push_back(q.admit(job("t")).jobId);
    for (std::uint64_t id : ids) {
        auto d = q.pop(soon());
        ASSERT_TRUE(d.has_value());
        EXPECT_EQ(d->id, id);
    }
    EXPECT_EQ(q.depth(), 0u);
}

TEST(JobQueue, SmoothWrrHonoursWeights)
{
    // alice weight 3, bob weight 1: over any window of picks with both
    // backlogged, alice gets ~3x bob's share, and never a long burst
    // (smooth WRR interleaves: A A B A repeating, not A A A B).
    JobQueue::Options opts;
    opts.capacity = 1000;
    opts.tenantQuota = 1000;
    JobQueue q(opts);
    for (int i = 0; i < 80; ++i) {
        q.admit(job("alice"), 3);
        q.admit(job("bob"), 1);
    }
    std::map<std::string, int> picked;
    std::string firstEight;
    for (int i = 0; i < 80; ++i) {
        auto d = q.tryPop();
        ASSERT_TRUE(d.has_value());
        ++picked[d->tenant];
        if (i < 8)
            firstEight += d->tenant == "alice" ? 'A' : 'B';
    }
    EXPECT_EQ(picked["alice"], 60);
    EXPECT_EQ(picked["bob"], 20);
    // Smooth interleaving, not bursts: the 4-pick cycle contains one B.
    EXPECT_EQ(firstEight, "AABAAABA");
}

TEST(JobQueue, WrrSkipsEmptyTenantsWithoutStarvation)
{
    JobQueue q;
    q.admit(job("heavy"), 100);
    q.admit(job("light"), 1);
    q.admit(job("heavy"), 100);
    // Even a weight-1 tenant gets served once the heavy backlog pauses.
    int lightSeen = 0;
    for (int i = 0; i < 3; ++i) {
        auto d = q.tryPop();
        ASSERT_TRUE(d.has_value());
        lightSeen += d->tenant == "light";
    }
    EXPECT_EQ(lightSeen, 1);
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(JobQueue, TenantEntriesAreErasedWhenTheirFifoEmpties)
{
    // Tenant names are client-chosen; a client cycling names must not
    // grow the tenant map without bound. An entry exists only while
    // its tenant has queued work.
    JobQueue q;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(q.admit(job("tenant" + std::to_string(i))).admitted);
        ASSERT_TRUE(q.tryPop().has_value());
    }
    EXPECT_EQ(q.tenantCount(), 0u);

    // Every removal path erases emptied tenants.
    const auto a = q.admit(job("a"));
    q.admit(job("b", "x", /*conn=*/7));
    q.admit(job("c"));
    EXPECT_EQ(q.tenantCount(), 3u);
    ASSERT_TRUE(q.cancel(a.jobId).has_value());
    EXPECT_EQ(q.tenantCount(), 2u);
    EXPECT_EQ(q.cancelConnection(7).size(), 1u);
    EXPECT_EQ(q.tenantCount(), 1u);
    EXPECT_EQ(q.drainAll().size(), 1u);
    EXPECT_EQ(q.tenantCount(), 0u);

    // A quota rejection of a brand-new tenant leaves no entry behind.
    JobQueue::Options opts;
    opts.tenantQuota = 0;
    JobQueue strict(opts);
    EXPECT_FALSE(strict.admit(job("ghost")).admitted);
    EXPECT_EQ(strict.tenantCount(), 0u);
}

TEST(JobQueue, CancelRemovesOnlyTheTargetJob)
{
    JobQueue q;
    const auto a = q.admit(job("t", "a"));
    const auto b = q.admit(job("t", "b"));
    const auto c = q.admit(job("t", "c"));
    auto cancelled = q.cancel(b.jobId);
    ASSERT_TRUE(cancelled.has_value());
    EXPECT_EQ(cancelled->tag, "b");
    EXPECT_FALSE(q.cancel(b.jobId).has_value()); // second time: gone
    EXPECT_FALSE(q.cancel(99999).has_value());
    EXPECT_EQ(q.pop(soon())->id, a.jobId);
    EXPECT_EQ(q.pop(soon())->id, c.jobId);
}

TEST(JobQueue, CancelConnectionSweepsAcrossTenants)
{
    JobQueue q;
    q.admit(job("t1", "keep", /*conn=*/1));
    q.admit(job("t1", "drop", /*conn=*/2));
    q.admit(job("t2", "drop2", /*conn=*/2));
    const auto removed = q.cancelConnection(2);
    EXPECT_EQ(removed.size(), 2u);
    EXPECT_EQ(q.depth(), 1u);
    EXPECT_EQ(q.pop(soon())->tag, "keep");
}

TEST(JobQueue, DrainAllEmptiesEveryTenant)
{
    JobQueue q;
    for (int i = 0; i < 5; ++i)
        q.admit(job("t" + std::to_string(i % 2)));
    const auto drained = q.drainAll();
    EXPECT_EQ(drained.size(), 5u);
    EXPECT_EQ(q.depth(), 0u);
    EXPECT_EQ(q.counters().cancelled, 5u);
}

TEST(JobQueue, CloseRefusesAdmissionButDrainsQueued)
{
    JobQueue q;
    const auto a = q.admit(job("t"));
    ASSERT_TRUE(a.admitted);
    q.close();
    EXPECT_TRUE(q.closed());
    const auto r = q.admit(job("t"));
    EXPECT_FALSE(r.admitted);
    EXPECT_EQ(r.error, ErrorCode::ShuttingDown);
    // The queued job survives close() — drain semantics.
    EXPECT_EQ(q.pop(soon())->id, a.jobId);
    EXPECT_FALSE(q.pop(Clock::now()).has_value());
}

TEST(JobQueue, PopTimesOutOnEmptyQueue)
{
    JobQueue q;
    const auto t0 = Clock::now();
    EXPECT_FALSE(
        q.pop(t0 + std::chrono::milliseconds(30)).has_value());
    EXPECT_GE(Clock::now() - t0, std::chrono::milliseconds(25));
}

TEST(JobQueue, PopWakesOnAdmitAndOnClose)
{
    JobQueue q;
    std::thread admitter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        q.admit(job("t"));
    });
    auto d = q.pop(Clock::now() + std::chrono::seconds(5));
    admitter.join();
    ASSERT_TRUE(d.has_value());

    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        q.close();
    });
    const auto t0 = Clock::now();
    EXPECT_FALSE(
        q.pop(Clock::now() + std::chrono::seconds(30)).has_value());
    closer.join();
    EXPECT_LT(Clock::now() - t0, std::chrono::seconds(5));
}

TEST(JobQueue, ConcurrentAdmitAndPopLosesNothing)
{
    JobQueue::Options opts;
    opts.capacity = 100000;
    opts.tenantQuota = 100000;
    JobQueue q(opts);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 500;
    std::atomic<int> popped{0};
    std::atomic<bool> done{false};
    std::thread consumer([&] {
        while (true) {
            auto d = q.pop(Clock::now() +
                           std::chrono::milliseconds(50));
            if (d) {
                ++popped;
            } else if (done.load() && q.depth() == 0) {
                break;
            }
        }
    });
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(
                    q.admit(job("tenant" + std::to_string(p))).admitted);
        });
    }
    for (auto &t : producers)
        t.join();
    done = true;
    consumer.join();
    EXPECT_EQ(popped.load(), kProducers * kPerProducer);
    EXPECT_EQ(q.counters().popped,
              static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

TEST(JobQueue, DescriptorsStayDescriptorSized)
{
    // The memory-bound invariant: thousands of queued jobs are cheap
    // because JobDesc holds only strings and scalars. Guard against a
    // future field accidentally embedding a decoded log or buffer.
    EXPECT_LE(sizeof(JobDesc), 512u);
}

} // namespace
