#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"

namespace
{

using rr::cpu::BranchPredictor;

TEST(BranchPredictor, DefaultsToNotTaken)
{
    BranchPredictor p(16);
    EXPECT_FALSE(p.predict(0));
    EXPECT_FALSE(p.predict(123));
}

TEST(BranchPredictor, LearnsTakenAfterOneUpdate)
{
    // Counters start at weak not-taken: a single taken outcome moves
    // them to weak taken.
    BranchPredictor p(16);
    p.update(5, true);
    EXPECT_TRUE(p.predict(5));
}

TEST(BranchPredictor, HysteresisSurvivesOneFlip)
{
    BranchPredictor p(16);
    for (int i = 0; i < 4; ++i)
        p.update(5, true); // saturate strong taken
    p.update(5, false);
    EXPECT_TRUE(p.predict(5)); // still (weakly) taken
    p.update(5, false);
    EXPECT_FALSE(p.predict(5));
}

TEST(BranchPredictor, CountersSaturate)
{
    BranchPredictor p(16);
    for (int i = 0; i < 100; ++i)
        p.update(5, false);
    p.update(5, true);
    p.update(5, true);
    EXPECT_TRUE(p.predict(5)); // two updates from strong NT reach WT
}

TEST(BranchPredictor, IndexAliasing)
{
    BranchPredictor p(4); // pcs 1 and 5 share a counter
    p.update(1, true);
    p.update(1, true);
    EXPECT_TRUE(p.predict(5));
    EXPECT_FALSE(p.predict(2));
}

TEST(BranchPredictor, IndependentEntries)
{
    BranchPredictor p(16);
    p.update(1, true);
    p.update(1, true);
    p.update(2, false);
    EXPECT_TRUE(p.predict(1));
    EXPECT_FALSE(p.predict(2));
}

} // namespace
