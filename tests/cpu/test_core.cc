#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "mem/backing_store.hh"
#include "mem/memory_system.hh"

namespace
{

using namespace rr;
using cpu::Core;
using isa::Assembler;
using isa::Program;

/** A single OoO core wired to a real memory system. */
class CoreHarness : public cpu::CoreListener
{
  public:
    explicit CoreHarness(Program prog, std::uint32_t cores = 1)
        : prog_(std::move(prog))
    {
        cfg.numCores = cores;
        for (auto &[addr, v] : prog_.initialData)
            backing.write64(addr, v);
        mem = mem::createMemorySystem(cfg, backing, clock);
        for (sim::CoreId c = 0; c < cores; ++c) {
            cores_.push_back(std::make_unique<Core>(c, cfg, prog_, *mem,
                                                    clock));
            cores_[c]->addListener(this);
            cores_[c]->start(c, cores);
        }
    }

    /** Run until every core is quiescent; returns cycles used. */
    sim::Cycle
    run(sim::Cycle max = 1'000'000)
    {
        sim::Cycle cycle = 0;
        for (; cycle < max; ++cycle) {
            mem->tick(cycle);
            bool done = mem->quiescent();
            for (auto &c : cores_) {
                c->tick(cycle);
                done = done && c->quiescent();
            }
            if (done && mem->quiescent())
                return cycle;
        }
        ADD_FAILURE() << "core did not quiesce";
        return cycle;
    }

    void onRetire(const cpu::RetireInfo &info) override
    {
        retires.push_back(info);
    }

    void onSquash(sim::SeqNum survivor) override
    {
        squashes.push_back(survivor);
    }

    bool canDispatchMem() const override { return allowMemDispatch; }

    Core &core(sim::CoreId c = 0) { return *cores_[c]; }

    sim::MachineConfig cfg;
    Program prog_;
    mem::BackingStore backing;
    mem::StampClock clock;
    std::unique_ptr<mem::MemorySystem> mem;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<cpu::RetireInfo> retires;
    std::vector<sim::SeqNum> squashes;
    bool allowMemDispatch = true;
};

/** Golden model: the functional interpreter. */
isa::ExecContext
interpret(const Program &p, mem::BackingStore &m)
{
    isa::ExecContext ctx;
    ctx.pc = p.entryFor(0);
    ctx.writeReg(isa::kRegThreadId, 0);
    ctx.writeReg(isa::kRegNumThreads, 1);
    while (!ctx.halted && ctx.instructions < 1000000)
        isa::step(p, ctx, m);
    return ctx;
}

TEST(Core, MatchesInterpreterOnAluProgram)
{
    Assembler a;
    a.li(3, 100);
    a.li(4, 0);
    a.label("loop");
    a.add(4, 4, 3);
    a.mul(5, 4, 3);
    a.xor_(6, 5, 4);
    a.addi(3, 3, -1);
    a.bne(3, 0, "loop");
    a.halt();
    Program p = a.assemble();

    CoreHarness h(p);
    h.run();
    mem::BackingStore golden_mem;
    auto golden = interpret(p, golden_mem);
    for (int r = 0; r < 32; ++r)
        EXPECT_EQ(h.core().archReg(r), golden.regs[r]) << "r" << r;
    EXPECT_EQ(h.core().retired(), golden.instructions);
}

TEST(Core, MatchesInterpreterOnMemoryProgram)
{
    Assembler a;
    a.li(3, 0x10000);
    a.li(4, 50);
    a.label("wloop"); // write 50 words
    a.slli(5, 4, 3);
    a.add(5, 5, 3);
    a.mul(6, 4, 4);
    a.st(6, 5, 0);
    a.addi(4, 4, -1);
    a.bne(4, 0, "wloop");
    a.li(4, 50);
    a.li(7, 0);
    a.label("rloop"); // read them back, accumulate
    a.slli(5, 4, 3);
    a.add(5, 5, 3);
    a.ld(6, 5, 0);
    a.add(7, 7, 6);
    a.addi(4, 4, -1);
    a.bne(4, 0, "rloop");
    a.halt();
    Program p = a.assemble();

    CoreHarness h(p);
    h.run();
    mem::BackingStore golden_mem;
    auto golden = interpret(p, golden_mem);
    EXPECT_EQ(h.core().archReg(7), golden.regs[7]);
    EXPECT_EQ(h.backing.fingerprint(), golden_mem.fingerprint());
}

TEST(Core, StoreToLoadForwarding)
{
    Assembler a;
    a.li(3, 0x10000);
    a.li(4, 42);
    a.st(4, 3, 0);
    a.ld(5, 3, 0); // must forward from the in-flight store
    a.halt();
    Program p = a.assemble();
    CoreHarness h(p);
    h.run();
    EXPECT_EQ(h.core().archReg(5), 42u);
    EXPECT_GE(h.core().stats().counterValue("forwarded_loads"), 1u);
}

TEST(Core, BranchMispredictsAreSquashedCorrectly)
{
    // An alternating branch defeats the bimodal predictor; the
    // architectural result must still be exact.
    Assembler a;
    a.li(3, 40); // iterations
    a.li(4, 0);  // parity
    a.li(5, 0);  // accumulator
    a.label("loop");
    a.xori(4, 4, 1);
    a.beq(4, 0, "even");
    a.addi(5, 5, 3);
    a.jmp("next");
    a.label("even");
    a.addi(5, 5, 7);
    a.label("next");
    a.addi(3, 3, -1);
    a.bne(3, 0, "loop");
    a.halt();
    Program p = a.assemble();
    CoreHarness h(p);
    h.run();
    mem::BackingStore gm;
    auto golden = interpret(p, gm);
    EXPECT_EQ(h.core().archReg(5), golden.regs[5]);
    EXPECT_GT(h.core().stats().counterValue("mispredicts"), 0u);
    EXPECT_GT(h.squashes.size(), 0u);
}

TEST(Core, WrongPathLoadsAreHarmless)
{
    // The not-taken path begins with a load through an uninitialized
    // (garbage) pointer; the branch is always taken. Wrong-path fetch
    // will speculatively issue that load; it must not corrupt state.
    Assembler a;
    a.li(3, 30);
    a.li(8, 0);
    a.label("loop");
    a.addi(3, 3, -1);
    a.bne(3, 0, "cont"); // taken 29 times: predictor learns taken
    a.jmp("out");
    a.label("cont");
    a.addi(8, 8, 1);
    a.jmp("loop");
    a.label("out");
    a.ld(9, 4, 0); // r4 = 0: load from address 0 (never written)
    a.halt();
    Program p = a.assemble();
    CoreHarness h(p);
    h.run();
    EXPECT_EQ(h.core().archReg(8), 29u);
    EXPECT_EQ(h.core().archReg(9), 0u);
}

TEST(Core, FenceDrainsWriteBuffer)
{
    Assembler a;
    a.li(3, 0x10000);
    a.li(4, 7);
    a.st(4, 3, 0);
    a.fence();
    a.ld(5, 3, 0);
    a.halt();
    Program p = a.assemble();
    CoreHarness h(p);
    h.run();
    EXPECT_EQ(h.core().archReg(5), 7u);
    EXPECT_EQ(h.backing.read64(0x10000), 7u);
}

TEST(Core, AtomicsExecuteAtHead)
{
    Assembler a;
    a.li(3, 0x10000);
    a.li(4, 5);
    a.fadd(5, 4, 3, 0);
    a.fadd(6, 4, 3, 0);
    a.xchg(7, 4, 3, 0);
    a.halt();
    Program p = a.assemble();
    CoreHarness h(p);
    h.run();
    EXPECT_EQ(h.core().archReg(5), 0u);
    EXPECT_EQ(h.core().archReg(6), 5u);
    EXPECT_EQ(h.core().archReg(7), 10u);
    EXPECT_EQ(h.backing.read64(0x10000), 5u);
}

TEST(Core, JalJrSubroutine)
{
    Assembler a;
    a.li(3, 0);
    a.jal(9, "sub");
    a.jal(9, "sub");
    a.halt();
    a.label("sub");
    a.addi(3, 3, 1);
    a.jr(9);
    Program p = a.assemble();
    CoreHarness h(p);
    h.run();
    EXPECT_EQ(h.core().archReg(3), 2u);
}

TEST(Core, RetireOrderIsProgramOrder)
{
    Assembler a;
    a.li(3, 0x10000);
    a.ld(4, 3, 0);  // slow (miss)
    a.li(5, 1);     // fast
    a.li(6, 2);     // fast
    a.halt();
    Program p = a.assemble();
    CoreHarness h(p);
    h.run();
    ASSERT_EQ(h.retires.size(), 5u);
    for (std::size_t i = 1; i < h.retires.size(); ++i)
        EXPECT_LT(h.retires[i - 1].seq, h.retires[i].seq);
}

TEST(Core, RetireInfoCarriesLoadValues)
{
    Assembler a;
    a.data(0x10000, 99);
    a.li(3, 0x10000);
    a.ld(4, 3, 0);
    a.halt();
    Program p = a.assemble();
    CoreHarness h(p);
    h.run();
    bool seen = false;
    for (const auto &ri : h.retires) {
        if (ri.op == isa::Opcode::Ld) {
            EXPECT_EQ(ri.loadValue, 99u);
            seen = true;
        }
    }
    EXPECT_TRUE(seen);
}

TEST(Core, ListenerBackPressureStallsMemDispatch)
{
    Assembler a;
    a.li(3, 0x10000);
    a.ld(4, 3, 0);
    a.halt();
    Program p = a.assemble();
    CoreHarness h(p);
    h.allowMemDispatch = false;
    // Tick a while: the load must never dispatch.
    for (sim::Cycle c = 0; c < 200; ++c) {
        h.mem->tick(c);
        h.core().tick(c);
    }
    EXPECT_FALSE(h.core().halted());
    EXPECT_GT(h.core().stats().counterValue("traq_full_stalls"), 0u);
    h.allowMemDispatch = true;
    for (sim::Cycle c = 200; c < 2000 && !h.core().quiescent(); ++c) {
        h.mem->tick(c);
        h.core().tick(c);
    }
    EXPECT_TRUE(h.core().halted());
    EXPECT_EQ(h.core().archReg(4), 0u);
}

TEST(Core, LoadsBypassPendingStores)
{
    // A store to one location followed by many independent loads: the
    // loads should perform while the store is still pending (the RC
    // behaviour Figure 1 is about). Verified architecturally plus via
    // the memory traffic pattern (loads complete before store misses).
    Assembler a;
    a.li(3, 0x10000);
    a.li(4, 0x20000);
    a.li(5, 1);
    a.st(5, 3, 0); // cold store miss: slow
    for (int i = 0; i < 8; ++i)
        a.ld(static_cast<isa::Reg>(6 + i), 4, i * 8); // independent loads
    a.halt();
    Program p = a.assemble();
    CoreHarness h(p);
    sim::Cycle cycles = h.run();
    // If loads serialized behind the store the run would take at least
    // two full miss latencies; bypassing keeps it near one.
    EXPECT_LT(cycles, 2 * (8 + 12 + 150));
    EXPECT_EQ(h.backing.read64(0x10000), 1u);
}

TEST(Core, TwoCoresCommunicateThroughMemory)
{
    // Core 0 writes a flag; core 1 spins on it, then reads the data.
    Assembler a;
    a.entry(0);
    a.li(3, 0x10000);
    a.li(4, 123);
    a.st(4, 3, 8); // data
    a.fence();
    a.li(4, 1);
    a.st(4, 3, 0); // flag
    a.halt();
    a.entry(1);
    a.li(3, 0x10000);
    a.label("spin");
    a.ld(4, 3, 0);
    a.beq(4, 0, "spin");
    a.ld(5, 3, 8);
    a.halt();
    Program p = a.assemble();
    CoreHarness h(p, 2);
    h.run();
    EXPECT_EQ(h.core(1).archReg(5), 123u);
}

TEST(Core, HaltWithFullPipelineDrainsWriteBuffer)
{
    Assembler a;
    a.li(3, 0x10000);
    for (int i = 0; i < 12; ++i) {
        a.li(4, i + 1);
        a.st(4, 3, i * 8);
    }
    a.halt();
    Program p = a.assemble();
    CoreHarness h(p);
    h.run();
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(h.backing.read64(0x10000 + i * 8), std::uint64_t(i + 1));
}

} // namespace
