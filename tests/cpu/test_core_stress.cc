/**
 * @file
 * Stress scenarios for the OoO core's trickier machinery: long
 * dependency chains through retired producers, subroutine-heavy code
 * (Jr fetch stalls), NMI-group accounting across mispredict squashes,
 * and structural back-pressure (tiny write buffer / LSQ).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "mem/backing_store.hh"
#include "mem/memory_system.hh"
#include "rnr/mrr_hub.hh"

namespace
{

using namespace rr;
using isa::Assembler;
using isa::Program;

/** Single/multi-core harness with an attached MRR hub per core. */
struct Rig
{
    explicit Rig(Program p, sim::MachineConfig machine_cfg,
                 std::uint32_t cores = 1)
        : prog(std::move(p)), cfg(machine_cfg)
    {
        cfg.numCores = cores;
        for (auto &[addr, v] : prog.initialData)
            backing.write64(addr, v);
        mem = mem::createMemorySystem(cfg, backing, clock);
        sim::RecorderConfig rc;
        for (sim::CoreId c = 0; c < cores; ++c) {
            coreList.push_back(std::make_unique<cpu::Core>(
                c, cfg, prog, *mem, clock));
            hubs.push_back(std::make_unique<rnr::MrrHub>(
                c, std::vector<sim::RecorderConfig>{rc}, clock));
            coreList[c]->addListener(hubs[c].get());
            mem->addObserver(hubs[c].get());
            coreList[c]->start(c, cores);
        }
    }

    void
    run(sim::Cycle max = 5'000'000)
    {
        for (sim::Cycle cy = 0; cy < max; ++cy) {
            mem->tick(cy);
            bool done = mem->quiescent();
            for (auto &c : coreList) {
                c->tick(cy);
                done = done && c->quiescent();
            }
            if (done && mem->quiescent())
                return;
        }
        FAIL() << "did not quiesce";
    }

    Program prog;
    sim::MachineConfig cfg;
    mem::BackingStore backing;
    mem::StampClock clock;
    std::unique_ptr<mem::MemorySystem> mem;
    std::vector<std::unique_ptr<cpu::Core>> coreList;
    std::vector<std::unique_ptr<rnr::MrrHub>> hubs;
};

TEST(CoreStress, LongChainThroughRetiredProducers)
{
    // A multiply chain long enough that producers retire long before
    // some consumers issue (exercises the retired-results path).
    Assembler a;
    a.li(3, 3);
    for (int i = 0; i < 300; ++i)
        a.mul(3, 3, 3); // value wraps mod 2^64; interpreter is golden
    a.halt();
    Program p = a.assemble();

    Rig rig(p, sim::MachineConfig{});
    rig.run();

    mem::BackingStore gm;
    isa::ExecContext golden;
    golden.pc = 0;
    while (!golden.halted)
        isa::step(p, golden, gm);
    EXPECT_EQ(rig.coreList[0]->archReg(3), golden.regs[3]);
}

TEST(CoreStress, NestedSubroutinesViaJalJr)
{
    // fn2 called from fn1 called from a loop; Jr return addresses flow
    // through registers and memory.
    Assembler a;
    a.li(3, 0);   // accumulator
    a.li(4, 25);  // iterations
    a.label("loop");
    a.jal(9, "fn1");
    a.addi(4, 4, -1);
    a.bne(4, 0, "loop");
    a.halt();
    a.label("fn1");
    a.li(10, 0x12000);
    a.st(9, 10, 0); // spill return address
    a.jal(9, "fn2");
    a.addi(3, 3, 1);
    a.li(10, 0x12000);
    a.ld(9, 10, 0); // reload return address
    a.jr(9);
    a.label("fn2");
    a.addi(3, 3, 2);
    a.jr(9);
    Program p = a.assemble();

    Rig rig(p, sim::MachineConfig{});
    rig.run();
    EXPECT_EQ(rig.coreList[0]->archReg(3), 25u * 3);
}

TEST(CoreStress, NmiAccountingSurvivesMispredicts)
{
    // Long non-memory stretches (forcing NMI-group pseudo entries) mixed
    // with unpredictable branches (forcing squashes that must restore
    // the NMI counter). The recorder invariant: log instruction count
    // equals retired instructions.
    Assembler a;
    a.li(3, 0x13000);
    a.li(4, 120); // iterations
    a.li(5, 1);   // lfsr-ish state
    a.label("loop");
    // ~20 non-memory instructions (exceeds the 15-instruction NMI cap).
    for (int i = 0; i < 10; ++i) {
        a.slli(6, 5, 1);
        a.xor_(5, 5, 6);
    }
    // Unpredictable branch on the mixed state.
    a.andi(6, 5, 1);
    a.beq(6, 0, "even");
    a.st(5, 3, 0);
    a.jmp("next");
    a.label("even");
    a.ld(7, 3, 0);
    a.label("next");
    a.addi(4, 4, -1);
    a.bne(4, 0, "loop");
    a.halt();
    Program p = a.assemble();

    Rig rig(p, sim::MachineConfig{});
    rig.run();

    EXPECT_GT(rig.coreList[0]->stats().counterValue("mispredicts"), 0u);
    rnr::LogStats stats;
    stats.accumulate(rig.hubs[0]->recorder(0).log());
    EXPECT_EQ(stats.instructions(), rig.coreList[0]->retired());
}

TEST(CoreStress, TinyWriteBufferBackPressure)
{
    sim::MachineConfig cfg;
    cfg.core.writeBufferEntries = 2;
    Assembler a;
    a.li(3, 0x14000);
    for (int i = 0; i < 40; ++i) {
        a.li(4, i + 1);
        a.st(4, 3, (i % 16) * 8);
    }
    a.halt();
    Program p = a.assemble();
    Rig rig(p, cfg);
    rig.run();
    EXPECT_GT(rig.coreList[0]->stats().counterValue("wb_full_stalls"),
              0u);
    for (int i = 24; i < 40; ++i) // last writer of each slot wins
        EXPECT_EQ(rig.backing.read64(0x14000 + (i % 16) * 8),
                  static_cast<std::uint64_t>(i + 1));
}

TEST(CoreStress, TinyLsqBackPressure)
{
    sim::MachineConfig cfg;
    cfg.core.lsqEntries = 4;
    Assembler a;
    a.li(3, 0x15000);
    a.li(5, 0);
    for (int i = 0; i < 30; ++i) {
        a.st(0, 3, i * 8);
        a.ld(4, 3, i * 8);
        a.add(5, 5, 4);
    }
    a.halt();
    Program p = a.assemble();
    Rig rig(p, cfg);
    rig.run();
    EXPECT_GT(rig.coreList[0]->stats().counterValue("lsq_full_stalls"),
              0u);
    EXPECT_EQ(rig.coreList[0]->archReg(5), 0u);
}

TEST(CoreStress, FenceHeavyCodeIsExact)
{
    Assembler a;
    a.li(3, 0x16000);
    a.li(5, 0);
    for (int i = 0; i < 20; ++i) {
        a.li(4, i * 7 + 1);
        a.st(4, 3, 0);
        a.fence();
        a.ld(6, 3, 0);
        a.add(5, 5, 6);
        a.fence();
    }
    a.halt();
    Program p = a.assemble();
    Rig rig(p, sim::MachineConfig{});
    rig.run();
    std::uint64_t expect = 0;
    for (int i = 0; i < 20; ++i)
        expect += i * 7 + 1;
    EXPECT_EQ(rig.coreList[0]->archReg(5), expect);
}

TEST(CoreStress, RecorderSeesEveryRetiredInstructionMultiCore)
{
    // Two racing cores; per-core hub logs must each account for exactly
    // that core's retired instructions.
    Assembler a;
    a.li(3, 0x17000);
    a.li(4, 200);
    a.label("loop");
    a.fadd(5, 29, 3, 0);
    a.ld(6, 3, 8);
    a.addi(6, 6, 1);
    a.st(6, 3, 8);
    a.addi(4, 4, -1);
    a.bne(4, 0, "loop");
    a.halt();
    Program p = a.assemble();
    Rig rig(p, sim::MachineConfig{}, 2);
    rig.run();
    for (int c = 0; c < 2; ++c) {
        rnr::LogStats stats;
        stats.accumulate(rig.hubs[c]->recorder(0).log());
        EXPECT_EQ(stats.instructions(), rig.coreList[c]->retired())
            << "core " << c;
    }
}

} // namespace
