#include <gtest/gtest.h>

#include "cpu/write_buffer.hh"

namespace
{

using rr::cpu::WriteBuffer;

TEST(WriteBuffer, StartsEmpty)
{
    WriteBuffer wb(4);
    EXPECT_TRUE(wb.empty());
    EXPECT_FALSE(wb.full());
    EXPECT_EQ(wb.nextToIssue(), nullptr);
}

TEST(WriteBuffer, FillsToCapacity)
{
    WriteBuffer wb(2);
    wb.push(0x100, 1, 10);
    EXPECT_FALSE(wb.full());
    wb.push(0x108, 2, 11);
    EXPECT_TRUE(wb.full());
    EXPECT_EQ(wb.size(), 2u);
}

TEST(WriteBuffer, IssuesInFifoOrder)
{
    WriteBuffer wb(4);
    wb.push(0x100, 1, 10);
    wb.push(0x108, 2, 11);
    WriteBuffer::Entry *e = wb.nextToIssue();
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->seq, 10u);
    e->issued = true;
    e = wb.nextToIssue();
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->seq, 11u);
}

TEST(WriteBuffer, OutOfOrderCompletionKeepsFifoPop)
{
    WriteBuffer wb(4);
    wb.push(0x100, 1, 10);
    wb.push(0x108, 2, 11);
    wb.nextToIssue()->issued = true;
    wb.nextToIssue()->issued = true;
    wb.complete(11); // younger completes first
    EXPECT_EQ(wb.size(), 2u); // head still pending: no pop
    wb.complete(10);
    EXPECT_TRUE(wb.empty()); // both popped together
}

TEST(WriteBuffer, ForwardingFindsYoungestMatch)
{
    WriteBuffer wb(4);
    wb.push(0x100, 1, 10);
    wb.push(0x100, 2, 11); // same word, younger
    wb.push(0x108, 3, 12);
    const WriteBuffer::Entry *e = wb.youngestFor(0x100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->value, 2u);
    EXPECT_EQ(wb.youngestFor(0x110), nullptr);
}

TEST(WriteBuffer, ForwardingSeesUnissuedAndIssued)
{
    WriteBuffer wb(4);
    wb.push(0x100, 5, 10);
    wb.nextToIssue()->issued = true;
    const WriteBuffer::Entry *e = wb.youngestFor(0x100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->value, 5u);
}

} // namespace
