#include <gtest/gtest.h>

#include "mem/backing_store.hh"

namespace
{

using rr::mem::BackingStore;

TEST(BackingStore, UnwrittenReadsZeroWithoutAllocating)
{
    BackingStore m;
    EXPECT_EQ(m.read64(0xdeadbeef00), 0u);
    EXPECT_EQ(m.numPages(), 0u);
}

TEST(BackingStore, WriteReadRoundTrip)
{
    BackingStore m;
    m.write64(0x1000, 42);
    EXPECT_EQ(m.read64(0x1000), 42u);
    EXPECT_EQ(m.numPages(), 1u);
}

TEST(BackingStore, UnalignedAddressesSnapToWords)
{
    BackingStore m;
    m.write64(0x1007, 7);
    EXPECT_EQ(m.read64(0x1000), 7u);
    EXPECT_EQ(m.read64(0x1001), 7u);
}

TEST(BackingStore, DistantAddressesAreSparse)
{
    BackingStore m;
    m.write64(0x0, 1);
    m.write64(1ULL << 40, 2);
    EXPECT_EQ(m.numPages(), 2u);
    EXPECT_EQ(m.read64(0x0), 1u);
    EXPECT_EQ(m.read64(1ULL << 40), 2u);
}

TEST(BackingStore, FingerprintDetectsDifferences)
{
    BackingStore a, b;
    a.write64(0x1000, 1);
    b.write64(0x1000, 1);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.write64(0x2000, 5);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(BackingStore, FingerprintIsOrderIndependent)
{
    BackingStore a, b;
    a.write64(0x1000, 1);
    a.write64(0x9000, 2);
    b.write64(0x9000, 2);
    b.write64(0x1000, 1);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(BackingStore, FingerprintIgnoresExplicitZeros)
{
    // Writing zero is indistinguishable from never writing: keeps the
    // fingerprint stable across "touched but zero" pages.
    BackingStore a, b;
    a.write64(0x1000, 0);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(BackingStore, CloneIsIndependent)
{
    BackingStore a;
    a.write64(0x1000, 3);
    BackingStore b = a.clone();
    b.write64(0x1000, 4);
    EXPECT_EQ(a.read64(0x1000), 3u);
    EXPECT_EQ(b.read64(0x1000), 4u);
}

} // namespace
