#include <gtest/gtest.h>

#include "mem/cache_array.hh"

namespace
{

using namespace rr::mem;
using rr::sim::Addr;
using rr::sim::CacheConfig;
using rr::sim::kLineBytes;

// 4 sets x 2 ways x 32B lines = 256B.
const CacheConfig kSmall{256, 2, 4, 1};

/** n-th distinct line address mapping to a given set (4-set cache). */
Addr
lineInSet(std::uint32_t set, std::uint32_t n)
{
    return static_cast<Addr>(n * 4 + set) * kLineBytes;
}

TEST(CacheArray, Geometry)
{
    CacheArray c(kSmall);
    EXPECT_EQ(c.numSets(), 4u);
    EXPECT_EQ(c.associativity(), 2u);
}

TEST(CacheArray, MissingLineNotFound)
{
    CacheArray c(kSmall);
    EXPECT_EQ(c.find(0x100), nullptr);
    EXPECT_EQ(c.stateOf(0x100), MesiState::Invalid);
}

TEST(CacheArray, InstallThenFind)
{
    CacheArray c(kSmall);
    Addr line = lineInSet(1, 0);
    CacheArray::Line *way = c.victimFor(line, nullptr);
    ASSERT_NE(way, nullptr);
    c.install(*way, line, MesiState::Exclusive);
    EXPECT_EQ(c.stateOf(line), MesiState::Exclusive);
    EXPECT_EQ(c.find(line)->tag, line);
}

TEST(CacheArray, VictimPrefersInvalidWay)
{
    CacheArray c(kSmall);
    Addr l0 = lineInSet(2, 0);
    CacheArray::Line *w0 = c.victimFor(l0, nullptr);
    c.install(*w0, l0, MesiState::Shared);
    // Second install in the same set must not evict the first.
    Addr l1 = lineInSet(2, 1);
    CacheArray::Line *w1 = c.victimFor(l1, nullptr);
    ASSERT_NE(w1, nullptr);
    EXPECT_FALSE(w1->valid());
    c.install(*w1, l1, MesiState::Shared);
    EXPECT_NE(c.find(l0), nullptr);
    EXPECT_NE(c.find(l1), nullptr);
}

TEST(CacheArray, LruEviction)
{
    CacheArray c(kSmall);
    Addr l0 = lineInSet(0, 0), l1 = lineInSet(0, 1), l2 = lineInSet(0, 2);
    c.install(*c.victimFor(l0, nullptr), l0, MesiState::Shared);
    c.install(*c.victimFor(l1, nullptr), l1, MesiState::Shared);
    // Touch l0 so l1 becomes LRU.
    c.touch(*c.find(l0));
    CacheArray::Line *victim = c.victimFor(l2, nullptr);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->tag, l1);
}

TEST(CacheArray, BlockedLinesAreSkipped)
{
    CacheArray c(kSmall);
    Addr l0 = lineInSet(0, 0), l1 = lineInSet(0, 1), l2 = lineInSet(0, 2);
    c.install(*c.victimFor(l0, nullptr), l0, MesiState::Shared);
    c.install(*c.victimFor(l1, nullptr), l1, MesiState::Shared);
    c.touch(*c.find(l0)); // l1 is LRU...
    auto blocked = [&](Addr a) { return a == l1; }; // ...but pinned
    CacheArray::Line *victim = c.victimFor(l2, blocked);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->tag, l0);
}

TEST(CacheArray, AllWaysBlockedReturnsNull)
{
    CacheArray c(kSmall);
    Addr l0 = lineInSet(0, 0), l1 = lineInSet(0, 1), l2 = lineInSet(0, 2);
    c.install(*c.victimFor(l0, nullptr), l0, MesiState::Shared);
    c.install(*c.victimFor(l1, nullptr), l1, MesiState::Shared);
    auto blocked = [](Addr) { return true; };
    EXPECT_EQ(c.victimFor(l2, blocked), nullptr);
}

TEST(CacheArray, DifferentSetsDoNotInterfere)
{
    CacheArray c(kSmall);
    for (std::uint32_t s = 0; s < 4; ++s) {
        Addr l = lineInSet(s, 0);
        c.install(*c.victimFor(l, nullptr), l, MesiState::Modified);
    }
    for (std::uint32_t s = 0; s < 4; ++s)
        EXPECT_EQ(c.stateOf(lineInSet(s, 0)), MesiState::Modified);
}

TEST(CacheArray, ForEachValidVisitsAllLines)
{
    CacheArray c(kSmall);
    c.install(*c.victimFor(lineInSet(0, 0), nullptr), lineInSet(0, 0),
              MesiState::Shared);
    c.install(*c.victimFor(lineInSet(3, 0), nullptr), lineInSet(3, 0),
              MesiState::Modified);
    int count = 0;
    c.forEachValid([&](CacheArray::Line &) { ++count; });
    EXPECT_EQ(count, 2);
}

TEST(CacheArray, MesiStateNames)
{
    EXPECT_STREQ(toString(MesiState::Invalid), "I");
    EXPECT_STREQ(toString(MesiState::Shared), "S");
    EXPECT_STREQ(toString(MesiState::Exclusive), "E");
    EXPECT_STREQ(toString(MesiState::Modified), "M");
}

} // namespace
