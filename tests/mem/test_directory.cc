/**
 * @file
 * Unit tests for the home-directory MESI backend (src/mem/directory.cc):
 * tracking-state transitions, targeted snoop delivery, the stale-state
 * paths left behind by silent evictions, the Section 4.3 bump on entry
 * destruction, back-invalidation races with dirty lines, and the banked
 * grant arbitration. A final stress test cross-checks the directory
 * against the snoopy backend on an identical access trace.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/directory.hh"
#include "mem/memory_system.hh"

namespace
{

using namespace rr::mem;
using rr::sim::Addr;
using rr::sim::CoreId;
using rr::sim::Cycle;
using rr::sim::MachineConfig;

struct Completion
{
    std::uint64_t tag;
    AccessKind kind;
    std::uint64_t value;
    Cycle when;
};

/**
 * Like the snoopy harness in test_memory_system.cc, but constructs the
 * DirectoryMemorySystem directly so tests can assert on the tracking
 * state (dirOwner/dirSharers/dirHasEntry).
 */
class DirHarness : public MemClient, public MemoryObserver
{
  public:
    explicit DirHarness(std::uint32_t cores)
    {
        cfg.numCores = cores;
        cfg.coherence = rr::sim::CoherenceKind::Directory;
    }

    /** Call after any cfg overrides. */
    void
    build()
    {
        cfg.validate();
        dir = std::make_unique<DirectoryMemorySystem>(cfg, backing, clock);
        for (CoreId c = 0; c < cfg.numCores; ++c)
            dir->setClient(c, this);
        dir->addObserver(this);
    }

    void
    memCompleted(std::uint64_t tag, AccessKind kind, std::uint64_t value,
                 Cycle when) override
    {
        completions.push_back(Completion{tag, kind, value, when});
    }

    void
    onSnoop(CoreId observer, const SnoopEvent &ev) override
    {
        snoops.emplace_back(observer, ev);
    }

    void
    onDirtyEviction(CoreId core, Addr line, std::uint64_t stamp) override
    {
        (void)stamp;
        evictions.emplace_back(core, line);
    }

    void
    runUntil(Cycle until)
    {
        for (; now < until; ++now)
            dir->tick(now);
    }

    /** Run until the system quiesces (bounded; asserts on runaway). */
    void
    drain()
    {
        Cycle limit = now + 100000;
        while (!dir->quiescent()) {
            dir->tick(now++);
            ASSERT_LT(now, limit) << "memory system did not quiesce";
        }
    }

    const Completion *
    completionFor(std::uint64_t tag) const
    {
        for (const auto &c : completions) {
            if (c.tag == tag)
                return &c;
        }
        return nullptr;
    }

    /** Snoops delivered to @p core for @p line after sequence point @p from. */
    std::size_t
    snoopsTo(CoreId core, Addr line, std::size_t from = 0) const
    {
        std::size_t n = 0;
        for (std::size_t i = from; i < snoops.size(); ++i) {
            if (snoops[i].first == core &&
                snoops[i].second.lineAddr == rr::sim::lineAddr(line))
                ++n;
        }
        return n;
    }

    MachineConfig cfg;
    BackingStore backing;
    StampClock clock;
    std::unique_ptr<DirectoryMemorySystem> dir;
    Cycle now = 0;
    std::vector<Completion> completions;
    std::vector<std::pair<CoreId, SnoopEvent>> snoops;
    std::vector<std::pair<CoreId, Addr>> evictions;
};

/** Stride between addresses that map to the same L1 set. */
Addr
l1SetStride(const MachineConfig &cfg)
{
    return static_cast<Addr>(cfg.l1.numSets()) * rr::sim::kLineBytes;
}

TEST(Directory, ColdLoadGrantsExclusiveAndSetsOwner)
{
    DirHarness h(4);
    h.build();
    h.backing.write64(0x1000, 42);
    h.runUntil(1);
    h.dir->access(0, AccessKind::Load, 0x1000, 0, 1);
    h.drain();

    const Completion *c = h.completionFor(1);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, 42u);
    EXPECT_EQ(h.dir->l1State(0, 0x1000), MesiState::Exclusive);
    ASSERT_TRUE(h.dir->dirHasEntry(0x1000));
    EXPECT_EQ(h.dir->dirOwner(0x1000), 0);
    EXPECT_EQ(h.dir->dirSharers(0x1000), 0u);
    EXPECT_EQ(h.dir->numBanks(), 4u);
}

TEST(Directory, ReadSharingDemotesOwnerToSharer)
{
    DirHarness h(4);
    h.build();
    h.runUntil(1);
    h.dir->access(0, AccessKind::Load, 0x1000, 0, 1);
    h.drain();
    const std::size_t mark = h.snoops.size();
    h.dir->access(1, AccessKind::Load, 0x1000, 0, 2);
    h.drain();

    EXPECT_EQ(h.dir->l1State(0, 0x1000), MesiState::Shared);
    EXPECT_EQ(h.dir->l1State(1, 0x1000), MesiState::Shared);
    EXPECT_EQ(h.dir->dirOwner(0x1000), -1);
    EXPECT_EQ(h.dir->dirSharers(0x1000), 0b0011u);
    // The ex-owner supplied the data and observed the GetS.
    ASSERT_EQ(h.snoopsTo(0, 0x1000, mark), 1u);
    EXPECT_TRUE(h.snoops.back().second.observerHadLine);
    EXPECT_FALSE(h.snoops.back().second.isWrite);
}

TEST(Directory, GetMInvalidatesExactlyListedCores)
{
    DirHarness h(4);
    h.build();
    h.runUntil(1);
    h.dir->access(0, AccessKind::Load, 0x1000, 0, 1);
    h.drain();
    h.dir->access(1, AccessKind::Load, 0x1000, 0, 2);
    h.drain();
    const std::size_t mark = h.snoops.size();
    h.dir->access(2, AccessKind::Store, 0x1000, 7, 3);
    h.drain();

    EXPECT_EQ(h.dir->l1State(0, 0x1000), MesiState::Invalid);
    EXPECT_EQ(h.dir->l1State(1, 0x1000), MesiState::Invalid);
    EXPECT_EQ(h.dir->l1State(2, 0x1000), MesiState::Modified);
    EXPECT_EQ(h.dir->dirOwner(0x1000), 2);
    EXPECT_EQ(h.dir->dirSharers(0x1000), 0u);
    // Exactly the two listed sharers were snooped; core 3 was not.
    EXPECT_EQ(h.snoopsTo(0, 0x1000, mark), 1u);
    EXPECT_EQ(h.snoopsTo(1, 0x1000, mark), 1u);
    EXPECT_EQ(h.snoopsTo(3, 0x1000, mark), 0u);
}

TEST(Directory, ColdMissBroadcastsButTrackedLineIsTargeted)
{
    DirHarness h(4);
    h.build();
    h.runUntil(1);
    // Cold line: no tracking state, so the request is broadcast (every
    // core but the requester sees it, none holding the line).
    h.dir->access(0, AccessKind::Load, 0x2000, 0, 1);
    h.drain();
    EXPECT_EQ(h.snoopsTo(1, 0x2000), 1u);
    EXPECT_EQ(h.snoopsTo(2, 0x2000), 1u);
    EXPECT_EQ(h.snoopsTo(3, 0x2000), 1u);
    for (const auto &[obs, ev] : h.snoops)
        EXPECT_FALSE(ev.observerHadLine);

    // Tracked line: the next transaction routes point-to-point.
    const std::size_t mark = h.snoops.size();
    h.dir->access(2, AccessKind::Store, 0x2000, 5, 2);
    h.drain();
    EXPECT_EQ(h.snoopsTo(0, 0x2000, mark), 1u); // the listed owner
    EXPECT_EQ(h.snoopsTo(1, 0x2000, mark), 0u);
    EXPECT_EQ(h.snoopsTo(3, 0x2000, mark), 0u);
}

TEST(Directory, SilentEvictionLeavesStaleOwnerServedByHome)
{
    DirHarness h(2);
    h.build();
    h.backing.write64(0x1000, 99);
    h.runUntil(1);
    h.dir->access(0, AccessKind::Load, 0x1000, 0, 1);
    h.drain();
    ASSERT_EQ(h.dir->dirOwner(0x1000), 0);

    // Fill core 0's L1 set until 0x1000 is silently evicted (clean/E
    // evictions notify nobody, so the directory keeps the stale owner).
    const Addr stride = l1SetStride(h.cfg);
    for (std::uint32_t k = 1; k <= h.cfg.l1.associativity; ++k) {
        h.dir->access(0, AccessKind::Load, 0x1000 + k * stride, 0, 10 + k);
        h.drain();
    }
    ASSERT_EQ(h.dir->l1State(0, 0x1000), MesiState::Invalid);
    ASSERT_EQ(h.dir->dirOwner(0x1000), 0) << "eviction must be silent";

    // A later reader is served by the home (stale-owner path) and still
    // gets the right data; the stale owner sees only a spurious snoop.
    const std::size_t mark = h.snoops.size();
    h.dir->access(1, AccessKind::Load, 0x1000, 0, 2);
    h.drain();
    const Completion *c = h.completionFor(2);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, 99u);
    EXPECT_EQ(h.dir->stats().counterValue("dir_stale_owner"), 1u);
    ASSERT_EQ(h.snoopsTo(0, 0x1000, mark), 1u);
    EXPECT_FALSE(h.snoops.back().second.observerHadLine);
    // The stale ex-owner stays listed as a sharer: conservative, and
    // required for the ordering markers of later transactions.
    EXPECT_EQ(h.dir->dirSharers(0x1000) & 1u, 1u);
}

TEST(Directory, DirtyEvictionPutMKeepsExOwnerListed)
{
    DirHarness h(2);
    h.build();
    h.runUntil(1);
    h.dir->access(0, AccessKind::Store, 0x1000, 0xbeef, 1);
    h.drain();
    ASSERT_EQ(h.dir->l1State(0, 0x1000), MesiState::Modified);
    ASSERT_EQ(h.dir->dirOwner(0x1000), 0);

    // Evict the dirty line from core 0's L1.
    const Addr stride = l1SetStride(h.cfg);
    for (std::uint32_t k = 1; k <= h.cfg.l1.associativity; ++k) {
        h.dir->access(0, AccessKind::Load, 0x1000 + k * stride, 0, 10 + k);
        h.drain();
    }
    ASSERT_EQ(h.dir->l1State(0, 0x1000), MesiState::Invalid);

    // The writeback emitted the Section 4.3 conservative bump...
    bool bumped = false;
    for (const auto &[core, line] : h.evictions)
        bumped = bumped ||
                 (core == 0 && line == rr::sim::lineAddr(Addr{0x1000}));
    EXPECT_TRUE(bumped);
    // ...and the PutM demoted the ex-owner to a *listed* sharer: bumps
    // fix the Opt counting, but only a routed ordering marker can give
    // a later reader its write->read dependency edge.
    EXPECT_EQ(h.dir->dirOwner(0x1000), -1);
    EXPECT_EQ(h.dir->dirSharers(0x1000) & 1u, 1u);

    // The ex-owner is therefore still snooped on the next GetS, and the
    // reader sees the written-back value.
    const std::size_t mark = h.snoops.size();
    h.dir->access(1, AccessKind::Load, 0x1000, 0, 2);
    h.drain();
    EXPECT_EQ(h.snoopsTo(0, 0x1000, mark), 1u);
    const Completion *c = h.completionFor(2);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, 0xbeefu);
}

/**
 * Shrink the shared L2 to one line per core so a second distinct line
 * forces an L2 eviction, destroying the victim's directory entry.
 */
class TinyL2Harness : public DirHarness
{
  public:
    explicit TinyL2Harness(std::uint32_t cores) : DirHarness(cores)
    {
        cfg.l2 = rr::sim::CacheConfig{rr::sim::kLineBytes, 1, 64, 12};
        build();
    }
};

TEST(Directory, L2EvictionDestroysEntryAndBumpsEveryListedCore)
{
    TinyL2Harness h(2);
    // Total L2: 2 lines, direct-mapped, 2 sets. 0x1000 and 0x1080 both
    // map to set 0, so the second install evicts the first.
    h.runUntil(1);
    h.dir->access(0, AccessKind::Load, 0x1000, 0, 1);
    h.drain();
    h.dir->access(1, AccessKind::Load, 0x1000, 0, 2);
    h.drain();
    ASSERT_EQ(h.dir->dirSharers(0x1000), 0b0011u);

    h.dir->access(0, AccessKind::Load, 0x1080, 0, 3);
    h.drain();

    // Entry destroyed: both listed cores lose snoop visibility and both
    // get the conservative bump (Section 4.3); inclusion back-
    // invalidates the L1 copies.
    EXPECT_FALSE(h.dir->dirHasEntry(0x1000));
    std::size_t bumps[2] = {0, 0};
    for (const auto &[core, line] : h.evictions) {
        if (line == rr::sim::lineAddr(Addr{0x1000}))
            ++bumps[core];
    }
    EXPECT_EQ(bumps[0], 1u);
    EXPECT_EQ(bumps[1], 1u);
    EXPECT_EQ(h.dir->l1State(0, 0x1000), MesiState::Invalid);
    EXPECT_EQ(h.dir->l1State(1, 0x1000), MesiState::Invalid);
}

TEST(Directory, BackInvalidationOfDirtyLineWritesBack)
{
    TinyL2Harness h(2);
    h.runUntil(1);
    h.dir->access(0, AccessKind::Store, 0x1000, 0x1234, 1);
    h.drain();
    ASSERT_EQ(h.dir->l1State(0, 0x1000), MesiState::Modified);

    // The race: a conflicting L2 install back-invalidates a line that is
    // dirty in a remote L1. The copy must reach memory, not vanish.
    h.dir->access(1, AccessKind::Load, 0x1080, 0, 2);
    h.drain();
    EXPECT_EQ(h.dir->l1State(0, 0x1000), MesiState::Invalid);
    EXPECT_FALSE(h.dir->dirHasEntry(0x1000));

    // Reload on a third path: value must be the dirty data.
    h.dir->access(1, AccessKind::Load, 0x1000, 0, 3);
    h.drain();
    const Completion *c = h.completionFor(3);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, 0x1234u);
}

TEST(Directory, BankedGrantsServeDistinctBanksInOneCycle)
{
    DirHarness h(2);
    h.build();
    ASSERT_EQ(h.dir->numBanks(), 2u);
    h.runUntil(1);
    // Lines 0x1000/32 = 128 (bank 0) and 0x1020/32 = 129 (bank 1):
    // distinct home banks, so both grants happen the same cycle and the
    // cold misses complete together.
    h.dir->access(0, AccessKind::Load, 0x1000, 0, 1);
    h.dir->access(1, AccessKind::Load, 0x1020, 0, 2);
    h.drain();
    const Completion *a = h.completionFor(1);
    const Completion *b = h.completionFor(2);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->when, b->when);
}

TEST(Directory, SameBankGrantsSerialize)
{
    DirHarness h(2);
    h.build();
    h.runUntil(1);
    // Lines 128 and 130 both hash to bank 0 of 2: one grant per bank
    // per cycle, so the second request completes strictly later.
    h.dir->access(0, AccessKind::Load, 0x1000, 0, 1);
    h.dir->access(1, AccessKind::Load, 0x1040, 0, 2);
    h.drain();
    const Completion *a = h.completionFor(1);
    const Completion *b = h.completionFor(2);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a->when, b->when);
}

/**
 * Cross-backend check: drive the snoopy and directory systems with the
 * same mixed access trace and require identical load values and final
 * memory. Addresses are chosen per-core-disjoint for writes (the
 * backends make no ordering promise for racing writes granted in
 * different orders) with a shared read-only region.
 */
TEST(Directory, MatchesSnoopyOnCommonTrace)
{
    constexpr std::uint32_t kCores = 4;
    constexpr int kOpsPerCore = 150;

    struct Op
    {
        CoreId core;
        AccessKind kind;
        Addr addr;
        std::uint64_t value;
    };
    std::vector<Op> trace;
    std::mt19937_64 rng(12345);
    for (int i = 0; i < kOpsPerCore * static_cast<int>(kCores); ++i) {
        Op op;
        op.core = static_cast<CoreId>(rng() % kCores);
        const bool shared = (rng() % 4) == 0;
        if (shared) {
            // Shared read-only region.
            op.kind = AccessKind::Load;
            op.addr = 0x8000 + (rng() % 16) * 8;
            op.value = 0;
        } else {
            op.kind = (rng() % 2) ? AccessKind::Store : AccessKind::Load;
            op.addr = 0x10000 + op.core * 0x1000 + (rng() % 64) * 8;
            op.value = rng();
        }
        trace.push_back(op);
    }

    // Loads are keyed by issue tag, not completion order: the backends'
    // different latencies legally interleave completions differently.
    auto run = [&](rr::sim::CoherenceKind kind,
                   std::vector<std::uint64_t> &loads) -> std::uint64_t {
        MachineConfig cfg;
        cfg.numCores = kCores;
        cfg.coherence = kind;
        BackingStore backing;
        for (int i = 0; i < 16; ++i)
            backing.write64(0x8000 + i * 8, 0xabc0 + i);
        StampClock clock;
        auto mem = createMemorySystem(cfg, backing, clock);

        struct Client : MemClient
        {
            std::vector<std::uint64_t> *sink = nullptr;
            void
            memCompleted(std::uint64_t tag, AccessKind kind,
                         std::uint64_t value, Cycle) override
            {
                if (kind != AccessKind::Load)
                    return;
                if (sink->size() <= tag)
                    sink->resize(tag + 1, ~std::uint64_t{0});
                (*sink)[tag] = value;
            }
        } client;
        client.sink = &loads;
        for (CoreId c = 0; c < kCores; ++c)
            mem->setClient(c, &client);

        Cycle now = 0;
        std::size_t next = 0;
        std::uint64_t tag = 1;
        while (next < trace.size() || !mem->quiescent()) {
            // One access per core per cycle, strictly in trace order per
            // core so both backends see the same per-core streams.
            if (next < trace.size()) {
                const Op &op = trace[next];
                if (mem->canAccept(op.core, op.addr)) {
                    mem->access(op.core, op.kind, op.addr, op.value,
                                tag++);
                    ++next;
                }
            }
            mem->tick(now++);
            if (now >= Cycle{10000000}) {
                ADD_FAILURE() << "trace did not drain";
                break;
            }
        }
        return backing.fingerprint();
    };

    std::vector<std::uint64_t> snoopyLoads, dirLoads;
    std::uint64_t snoopyFp = 0, dirFp = 0;
    {
        SCOPED_TRACE("snoopy");
        snoopyFp = run(rr::sim::CoherenceKind::Snoopy, snoopyLoads);
    }
    {
        SCOPED_TRACE("directory");
        dirFp = run(rr::sim::CoherenceKind::Directory, dirLoads);
    }
    EXPECT_EQ(snoopyFp, dirFp);
    ASSERT_EQ(snoopyLoads.size(), dirLoads.size());
    EXPECT_EQ(snoopyLoads, dirLoads);
}

} // namespace
