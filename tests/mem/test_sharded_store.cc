#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/sharded_store.hh"

namespace
{

using rr::mem::BackingStore;
using rr::mem::ShardedStore;

TEST(ShardedStore, PreservesInitialImage)
{
    BackingStore init;
    init.write64(0x100, 1);
    init.write64(0x10000, 2);     // a different page
    init.write64(0x12345678, 3);  // far apart -> different shard
    ShardedStore store(init, 8);
    EXPECT_EQ(store.read(0x100), 1u);
    EXPECT_EQ(store.read(0x10000), 2u);
    EXPECT_EQ(store.read(0x12345678), 3u);
    EXPECT_EQ(store.collapse().fingerprint(), init.fingerprint());
}

TEST(ShardedStore, AbsentPagesReadZeroAndFindReturnsNull)
{
    ShardedStore store(BackingStore{}, 4);
    EXPECT_EQ(store.findPage(7), nullptr);
    EXPECT_EQ(store.read(7 * BackingStore::kPageBytes), 0u);

    std::uint64_t *page = store.ensurePage(7);
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(store.findPage(7), page);
    for (std::size_t w = 0; w < BackingStore::kWordsPerPage; ++w)
        EXPECT_EQ(page[w], 0u) << "word " << w;
}

TEST(ShardedStore, PagePointersAreStableAcrossInserts)
{
    ShardedStore store(BackingStore{}, 2);
    std::uint64_t *first = store.ensurePage(0);
    first[0] = 42;
    // Hammer the same shard's table with new pages (shard = index % 2).
    for (std::uint64_t p = 2; p < 2000; p += 2)
        store.ensurePage(p);
    EXPECT_EQ(store.findPage(0), first);
    EXPECT_EQ(first[0], 42u);
}

TEST(ShardedStore, CommitAppliesFinalValues)
{
    BackingStore init;
    init.write64(0x0, 100);
    ShardedStore store(init, 8);

    std::vector<std::pair<rr::sim::Addr, std::uint64_t>> writes = {
        {0x2000, 7}, // new page
        {0x0, 200},  // overwrite
        {0x8, 9},
    };
    store.commit(writes);
    EXPECT_EQ(store.read(0x0), 200u);
    EXPECT_EQ(store.read(0x8), 9u);
    EXPECT_EQ(store.read(0x2000), 7u);

    BackingStore expect;
    expect.write64(0x0, 200);
    expect.write64(0x8, 9);
    expect.write64(0x2000, 7);
    EXPECT_EQ(store.collapse().fingerprint(), expect.fingerprint());
}

TEST(ShardedStore, ShardCountIsClampedToOne)
{
    ShardedStore store(BackingStore{}, 0);
    EXPECT_EQ(store.numShards(), 1u);
    store.ensurePage(3)[1] = 5;
    EXPECT_EQ(store.read(3 * BackingStore::kPageBytes + 8), 5u);
}

TEST(ShardedStore, ConcurrentDisjointCommits)
{
    // Threads committing to disjoint words (the DAG's guarantee) must
    // not corrupt each other — this is the engine's exact access
    // pattern, and the test is meaningful under TSan.
    ShardedStore store(BackingStore{}, 4);
    constexpr int kThreads = 4, kWordsPer = 512;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&store, t] {
            for (int w = 0; w < kWordsPer; ++w) {
                // Interleave threads within pages so page creation
                // races are actually exercised.
                std::vector<std::pair<rr::sim::Addr, std::uint64_t>>
                    writes = {{static_cast<rr::sim::Addr>(
                                   (w * kThreads + t) * 8),
                               static_cast<std::uint64_t>(t * 10000 + w)}};
                store.commit(writes);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t) {
        for (int w = 0; w < kWordsPer; ++w) {
            EXPECT_EQ(store.read((w * kThreads + t) * 8),
                      static_cast<std::uint64_t>(t * 10000 + w));
        }
    }
}

} // namespace
