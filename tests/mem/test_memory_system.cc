#include <gtest/gtest.h>

#include <vector>

#include "mem/backing_store.hh"
#include "mem/memory_system.hh"

namespace
{

using namespace rr::mem;
using rr::sim::Addr;
using rr::sim::CoreId;
using rr::sim::Cycle;
using rr::sim::MachineConfig;

struct Completion
{
    CoreId core;
    std::uint64_t tag;
    AccessKind kind;
    std::uint64_t value;
    Cycle when;
};

/** Records completions, performs and snoops for assertions. */
class Harness : public MemClient, public MemoryObserver
{
  public:
    explicit Harness(std::uint32_t cores)
    {
        cfg.numCores = cores;
        mem = createMemorySystem(cfg, backing, clock);
        for (CoreId c = 0; c < cores; ++c)
            mem->setClient(c, this);
        mem->addObserver(this);
    }

    void
    memCompleted(std::uint64_t tag, AccessKind kind, std::uint64_t value,
                 Cycle when) override
    {
        completions.push_back(Completion{0, tag, kind, value, when});
    }

    void onPerform(const PerformEvent &ev) override
    {
        performs.push_back(ev);
    }

    void
    onSnoop(CoreId observer, const SnoopEvent &ev) override
    {
        snoops.emplace_back(observer, ev);
    }

    void
    onDirtyEviction(CoreId core, Addr line, std::uint64_t stamp) override
    {
        (void)stamp;
        evictions.emplace_back(core, line);
    }

    /** Run cycles [now, until). */
    void
    runUntil(Cycle until)
    {
        for (; now < until; ++now)
            mem->tick(now);
    }

    const Completion *
    completionFor(std::uint64_t tag) const
    {
        for (const auto &c : completions) {
            if (c.tag == tag)
                return &c;
        }
        return nullptr;
    }

    MachineConfig cfg;
    BackingStore backing;
    StampClock clock;
    std::unique_ptr<MemorySystem> mem;
    Cycle now = 0;
    std::vector<Completion> completions;
    std::vector<PerformEvent> performs;
    std::vector<std::pair<CoreId, SnoopEvent>> snoops;
    std::vector<std::pair<CoreId, Addr>> evictions;
};

TEST(MemorySystem, ColdLoadMissesAndReturnsMemoryValue)
{
    Harness h(2);
    h.backing.write64(0x1000, 77);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Load, 0x1000, 0, 1);
    h.runUntil(300);
    const Completion *c = h.completionFor(1);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, 77u);
    // Cold miss: ring + L2 + memory latency, well beyond a hit.
    EXPECT_GT(c->when, 100u);
    EXPECT_EQ(h.mem->l1State(0, 0x1000), MesiState::Exclusive);
}

TEST(MemorySystem, SecondLoadHitsWithHitLatency)
{
    Harness h(2);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Load, 0x1000, 0, 1);
    h.runUntil(300);
    const Cycle issue = h.now;
    h.mem->access(0, AccessKind::Load, 0x1008, 0, 2); // same line
    h.runUntil(issue + 10);
    const Completion *c = h.completionFor(2);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->when, issue - 1 + h.cfg.l1.hitLatency);
}

TEST(MemorySystem, StoreGrantsModified)
{
    Harness h(2);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Store, 0x2000, 5, 1);
    h.runUntil(300);
    EXPECT_EQ(h.mem->l1State(0, 0x2000), MesiState::Modified);
    EXPECT_EQ(h.backing.read64(0x2000), 5u);
}

TEST(MemorySystem, ReadSharingDowngradesOwner)
{
    Harness h(2);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Store, 0x2000, 5, 1);
    h.runUntil(300);
    h.mem->access(1, AccessKind::Load, 0x2000, 0, 2);
    h.runUntil(600);
    EXPECT_EQ(h.mem->l1State(0, 0x2000), MesiState::Shared);
    EXPECT_EQ(h.mem->l1State(1, 0x2000), MesiState::Shared);
    const Completion *c = h.completionFor(2);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, 5u);
}

TEST(MemorySystem, WriteInvalidatesSharers)
{
    Harness h(4);
    h.runUntil(1);
    for (CoreId c = 0; c < 3; ++c)
        h.mem->access(c, AccessKind::Load, 0x2000, 0, 10 + c);
    h.runUntil(600);
    h.mem->access(3, AccessKind::Store, 0x2000, 9, 20);
    h.runUntil(1200);
    for (CoreId c = 0; c < 3; ++c)
        EXPECT_EQ(h.mem->l1State(c, 0x2000), MesiState::Invalid);
    EXPECT_EQ(h.mem->l1State(3, 0x2000), MesiState::Modified);
}

TEST(MemorySystem, SnoopsBroadcastToAllButRequester)
{
    Harness h(4);
    h.runUntil(1);
    h.mem->access(2, AccessKind::Store, 0x2000, 1, 1);
    h.runUntil(300);
    ASSERT_EQ(h.snoops.size(), 3u);
    for (const auto &[observer, ev] : h.snoops) {
        EXPECT_NE(observer, 2u);
        EXPECT_EQ(ev.requester, 2u);
        EXPECT_TRUE(ev.isWrite);
        EXPECT_EQ(ev.lineAddr, rr::sim::lineAddr(0x2000));
    }
}

TEST(MemorySystem, SnoopStampPrecedesPerformStamp)
{
    // The dependence-ordering invariant: a transaction's snoop is
    // stamped before its perform events.
    Harness h(2);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Store, 0x2000, 1, 1);
    h.runUntil(300);
    ASSERT_EQ(h.performs.size(), 1u);
    ASSERT_EQ(h.snoops.size(), 1u);
    EXPECT_LT(h.snoops[0].second.stamp, h.performs[0].stamp);
}

TEST(MemorySystem, HitsEmitNoSnoops)
{
    Harness h(2);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Store, 0x2000, 1, 1);
    h.runUntil(300);
    const std::size_t snoops_before = h.snoops.size();
    h.mem->access(0, AccessKind::Store, 0x2000, 2, 2); // M hit
    h.runUntil(400);
    EXPECT_EQ(h.snoops.size(), snoops_before);
}

TEST(MemorySystem, WriteAtomicityValueOrder)
{
    // Two cores store to the same word; the final value must match the
    // serialization (perform-stamp) order.
    Harness h(2);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Store, 0x3000, 111, 1);
    h.mem->access(1, AccessKind::Store, 0x3000, 222, 2);
    h.runUntil(1000);
    ASSERT_EQ(h.performs.size(), 2u);
    const PerformEvent *last = &h.performs[0];
    if (h.performs[1].stamp > last->stamp)
        last = &h.performs[1];
    EXPECT_EQ(h.backing.read64(0x3000), last->storeValue);
}

TEST(MemorySystem, SameLineRequestsSerialize)
{
    // In-flight blocking: the second core's transaction must not grant
    // while the first is in flight; both eventually complete.
    Harness h(2);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Store, 0x3000, 1, 1);
    h.mem->access(1, AccessKind::Store, 0x3000, 2, 2);
    h.runUntil(2000);
    EXPECT_NE(h.completionFor(1), nullptr);
    EXPECT_NE(h.completionFor(2), nullptr);
    EXPECT_TRUE(h.mem->quiescent());
}

TEST(MemorySystem, MergedLoadsShareOneTransaction)
{
    Harness h(2);
    h.backing.write64(0x4000, 5);
    h.backing.write64(0x4008, 6);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Load, 0x4000, 0, 1);
    h.mem->access(0, AccessKind::Load, 0x4008, 0, 2); // same line: merge
    h.runUntil(500);
    EXPECT_EQ(h.mem->stats().counterValue("mshr_merges"), 1u);
    EXPECT_EQ(h.mem->stats().counterValue("bus_gets"), 1u);
    ASSERT_NE(h.completionFor(1), nullptr);
    ASSERT_NE(h.completionFor(2), nullptr);
    EXPECT_EQ(h.completionFor(1)->value, 5u);
    EXPECT_EQ(h.completionFor(2)->value, 6u);
}

TEST(MemorySystem, StoreMergedIntoLoadMissReplaysAfterFill)
{
    Harness h(2);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Load, 0x4000, 0, 1);
    h.mem->access(0, AccessKind::Store, 0x4008, 9, 2); // merges into GetS
    h.runUntil(2000);
    ASSERT_NE(h.completionFor(2), nullptr);
    EXPECT_EQ(h.backing.read64(0x4008), 9u);
    EXPECT_EQ(h.mem->l1State(0, 0x4000), MesiState::Modified);
    EXPECT_TRUE(h.mem->quiescent());
}

TEST(MemorySystem, UpgradeFromShared)
{
    Harness h(2);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Load, 0x5000, 0, 1);
    h.mem->access(1, AccessKind::Load, 0x5000, 0, 2);
    h.runUntil(800);
    ASSERT_EQ(h.mem->l1State(0, 0x5000), MesiState::Shared);
    h.mem->access(0, AccessKind::Store, 0x5000, 3, 3);
    h.runUntil(1200);
    EXPECT_EQ(h.mem->stats().counterValue("bus_upgrades"), 1u);
    EXPECT_EQ(h.mem->l1State(0, 0x5000), MesiState::Modified);
    EXPECT_EQ(h.mem->l1State(1, 0x5000), MesiState::Invalid);
}

TEST(MemorySystem, AtomicFaddReturnsOldValueAtomically)
{
    Harness h(2);
    h.backing.write64(0x6000, 10);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Fadd, 0x6000, 5, 1);
    h.mem->access(1, AccessKind::Fadd, 0x6000, 7, 2);
    h.runUntil(2000);
    // Both RMWs applied exactly once: 10 + 5 + 7.
    EXPECT_EQ(h.backing.read64(0x6000), 22u);
    const Completion *c1 = h.completionFor(1);
    const Completion *c2 = h.completionFor(2);
    ASSERT_NE(c1, nullptr);
    ASSERT_NE(c2, nullptr);
    // One of them saw 10, the other 15 or 17.
    EXPECT_TRUE((c1->value == 10 && c2->value == 15) ||
                (c2->value == 10 && c1->value == 17));
}

TEST(MemorySystem, XchgSwapsValue)
{
    Harness h(1);
    h.backing.write64(0x6000, 3);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Xchg, 0x6000, 9, 1);
    h.runUntil(500);
    EXPECT_EQ(h.completionFor(1)->value, 3u);
    EXPECT_EQ(h.backing.read64(0x6000), 9u);
}

TEST(MemorySystem, CacheToCacheTransferCounted)
{
    Harness h(2);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Store, 0x7000, 1, 1);
    h.runUntil(400);
    h.mem->access(1, AccessKind::Load, 0x7000, 0, 2);
    h.runUntil(800);
    EXPECT_EQ(h.mem->stats().counterValue("c2c_transfers"), 1u);
}

TEST(MemorySystem, CapacityEvictionWritesBackDirtyLine)
{
    Harness h(1);
    h.runUntil(1);
    // L1: 4-way, 512 sets. Fill one set with 5 dirty lines.
    const Addr set_stride = 512 * 32;
    std::uint64_t tag = 1;
    for (int i = 0; i < 5; ++i) {
        h.mem->access(0, AccessKind::Store, 0x10000 + i * set_stride,
                      i + 1, tag++);
        h.runUntil(h.now + 400);
    }
    EXPECT_GE(h.mem->stats().counterValue("l1_evictions"), 1u);
    EXPECT_GE(h.mem->stats().counterValue("bus_putm"), 1u);
    EXPECT_GE(h.evictions.size(), 1u);
    // Values survive eviction (BackingStore is the value authority).
    EXPECT_EQ(h.backing.read64(0x10000), 1u);
}

TEST(MemorySystem, PerformCarriesLoadAndStoreValues)
{
    Harness h(1);
    h.backing.write64(0x8000, 40);
    h.runUntil(1);
    h.mem->access(0, AccessKind::Fadd, 0x8000, 2, 1);
    h.runUntil(500);
    ASSERT_EQ(h.performs.size(), 1u);
    EXPECT_EQ(h.performs[0].loadValue, 40u);
    EXPECT_EQ(h.performs[0].storeValue, 42u);
    EXPECT_EQ(h.performs[0].kind, AccessKind::Fadd);
}

TEST(MemorySystem, CanAcceptHonorsMshrMerge)
{
    Harness h(1);
    h.runUntil(1);
    EXPECT_TRUE(h.mem->canAccept(0, 0x9000));
    h.mem->access(0, AccessKind::Load, 0x9000, 0, 1);
    // Same line merges regardless of free MSHRs.
    EXPECT_TRUE(h.mem->canAccept(0, 0x9008));
}

TEST(MemorySystem, QuiescentAfterDrain)
{
    Harness h(2);
    h.runUntil(1);
    EXPECT_TRUE(h.mem->quiescent());
    h.mem->access(0, AccessKind::Load, 0xa000, 0, 1);
    EXPECT_FALSE(h.mem->quiescent());
    h.runUntil(1000);
    EXPECT_TRUE(h.mem->quiescent());
}

} // namespace
