/**
 * @file
 * Property tests of the memory system under randomized traffic. The
 * central invariant: applying all PerformEvents to a fresh memory
 * image in stamp order reproduces the final BackingStore exactly —
 * i.e. the stamps really are a linearization (write atomicity), which
 * is the property RelaxReplay's correctness rests on (Observation 1).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/memory_system.hh"
#include "sim/rng.hh"

namespace
{

using namespace rr::mem;
using rr::sim::Addr;
using rr::sim::CoreId;
using rr::sim::Cycle;
using rr::sim::MachineConfig;

/** Collects performs/completions and drives randomized traffic. */
class Fuzzer : public MemClient, public MemoryObserver
{
  public:
    Fuzzer(std::uint32_t cores, std::uint64_t seed, std::uint32_t lines)
        : rng(seed), numLines(lines)
    {
        cfg.numCores = cores;
        mem = createMemorySystem(cfg, backing, clock);
        for (CoreId c = 0; c < cores; ++c)
            mem->setClient(c, this);
        mem->addObserver(this);
        inflight.resize(cores, 0);
    }

    void
    memCompleted(std::uint64_t tag, AccessKind, std::uint64_t,
                 Cycle) override
    {
        const CoreId core = static_cast<CoreId>(tag >> 32);
        --inflight.at(core);
        ++completions;
    }

    void onPerform(const PerformEvent &ev) override
    {
        performs.push_back(ev);
    }

    /** Issue random traffic for @p cycles, then drain. */
    void
    run(Cycle cycles)
    {
        Cycle now = 0;
        for (; now < cycles; ++now) {
            mem->tick(now);
            for (CoreId c = 0; c < cfg.numCores; ++c) {
                if (inflight[c] >= 4 || !rng.chance(1, 2))
                    continue;
                // Random word in a small line pool: heavy conflicts.
                const Addr word =
                    0x10000 + rng.below(numLines) * 32 +
                    rng.below(4) * 8;
                if (!mem->canAccept(c, word))
                    continue;
                const auto kind = static_cast<AccessKind>(rng.below(4));
                const std::uint64_t tag =
                    (static_cast<std::uint64_t>(c) << 32) | issued;
                mem->access(c, kind, word, rng.below(1000), tag);
                ++inflight[c];
                ++issued;
            }
        }
        // Drain.
        for (; !mem->quiescent(); ++now) {
            ASSERT_LT(now, cycles + 100000u) << "drain did not converge";
            mem->tick(now);
        }
    }

    MachineConfig cfg;
    BackingStore backing;
    StampClock clock;
    std::unique_ptr<MemorySystem> mem;
    rr::sim::Rng rng;
    std::uint32_t numLines;
    std::vector<int> inflight;
    std::vector<PerformEvent> performs;
    std::uint64_t issued = 0;
    std::uint64_t completions = 0;
};

class MemoryFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(MemoryFuzz, StampOrderIsALinearization)
{
    Fuzzer f(4, 7000 + GetParam(), 8);
    f.run(4000);
    ASSERT_EQ(f.completions, f.issued);
    ASSERT_EQ(f.performs.size(), f.issued);

    // Stamps are unique and were delivered in increasing order.
    for (std::size_t i = 1; i < f.performs.size(); ++i)
        ASSERT_GT(f.performs[i].stamp, f.performs[i - 1].stamp);

    // Replaying the perform events in stamp order onto a fresh image
    // must reproduce the final memory exactly.
    BackingStore replayed;
    for (const PerformEvent &ev : f.performs) {
        switch (ev.kind) {
          case AccessKind::Load:
            ASSERT_EQ(replayed.read64(ev.addr), ev.loadValue)
                << "load at stamp " << ev.stamp
                << " saw a value inconsistent with the linearization";
            break;
          case AccessKind::Store:
            replayed.write64(ev.addr, ev.storeValue);
            break;
          case AccessKind::Xchg:
          case AccessKind::Fadd:
            ASSERT_EQ(replayed.read64(ev.addr), ev.loadValue);
            replayed.write64(ev.addr, ev.storeValue);
            break;
        }
    }
    EXPECT_EQ(replayed.fingerprint(), f.backing.fingerprint());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryFuzz, ::testing::Range(0, 8));

TEST(MemoryFuzz, MesiInvariantHoldsUnderTraffic)
{
    // At quiescence: if any core holds a line Modified or Exclusive,
    // no other core may hold it in any valid state.
    Fuzzer f(4, 99, 6);
    f.run(3000);
    for (std::uint32_t l = 0; l < 6; ++l) {
        const Addr line = 0x10000 + l * 32;
        int owners = 0, sharers = 0;
        for (CoreId c = 0; c < 4; ++c) {
            const MesiState s = f.mem->l1State(c, line);
            if (s == MesiState::Modified || s == MesiState::Exclusive)
                ++owners;
            else if (s == MesiState::Shared)
                ++sharers;
        }
        EXPECT_LE(owners, 1) << "line " << l;
        if (owners == 1)
            EXPECT_EQ(sharers, 0) << "line " << l;
    }
}

TEST(MemoryFuzz, RmwsNeverLoseUpdatesUnderContention)
{
    // All cores fetch-add the same word; the final value must equal
    // the sum of addends.
    MachineConfig cfg;
    cfg.numCores = 8;
    BackingStore backing;
    StampClock clock;
    SnoopyMemorySystem mem(cfg, backing, clock);
    struct Sink : MemClient
    {
        int outstanding = 0;
        void memCompleted(std::uint64_t, AccessKind, std::uint64_t,
                          Cycle) override
        {
            --outstanding;
        }
    };
    std::vector<Sink> sinks(8);
    for (CoreId c = 0; c < 8; ++c)
        mem.setClient(c, &sinks[c]);

    std::uint64_t expected = 0;
    std::uint64_t tag = 0;
    Cycle now = 0;
    for (int round = 0; round < 50; ++round) {
        for (CoreId c = 0; c < 8; ++c) {
            while (!mem.canAccept(c, 0x9000))
                mem.tick(now++);
            mem.access(c, AccessKind::Fadd, 0x9000, c + 1, tag++);
            ++sinks[c].outstanding;
            expected += c + 1;
        }
        for (int i = 0; i < 10; ++i)
            mem.tick(now++);
    }
    while (!mem.quiescent())
        mem.tick(now++);
    EXPECT_EQ(backing.read64(0x9000), expected);
}

} // namespace
