/**
 * @file
 * Record-and-replay for concurrency debugging (the paper's motivating
 * use case). Two threads increment a shared counter WITHOUT a lock, so
 * updates can be lost nondeterministically. RelaxReplay's log pins down
 * the one interleaving that actually happened: the example prints the
 * recorded interval schedule around the racy accesses and then replays
 * the execution twice, showing that the lost-update outcome reproduces
 * exactly — which is what makes cyclic debugging of races possible.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "machine/machine.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"

using namespace rr;

namespace
{

constexpr sim::Addr kCounter = 0x20000;
constexpr int kIncrements = 40;

isa::Program
racyProgram()
{
    // Both threads: for (i = 0; i < N; ++i) counter++ -- unlocked
    // read-modify-write, so increments from different threads can
    // interleave and get lost.
    isa::Assembler a;
    a.li(3, kCounter);
    a.li(4, kIncrements);
    a.label("loop");
    a.ld(5, 3, 0);
    a.addi(5, 5, 1);
    a.st(5, 3, 0);
    a.addi(4, 4, -1);
    a.bne(4, 0, "loop");
    a.halt();
    return a.assemble();
}

} // namespace

int
main()
{
    const isa::Program program = racyProgram();

    sim::MachineConfig cfg;
    cfg.numCores = 2;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0].mode = sim::RecorderMode::Opt;

    machine::Machine m(cfg, program, policies);
    const mem::BackingStore initial = m.initialMemory();
    auto rec = m.run();

    const std::uint64_t final_count = m.memory().read64(kCounter);
    std::printf("2 threads x %d unlocked increments -> counter = %llu "
                "(%llu updates lost)\n",
                kIncrements, (unsigned long long)final_count,
                (unsigned long long)(2 * kIncrements - final_count));

    // Show the recorded interleaving: merge both cores' intervals into
    // the replay order and print the schedule.
    struct Slot
    {
        std::uint64_t ts;
        int core;
        const rnr::IntervalRecord *iv;
    };
    std::vector<Slot> schedule;
    for (int c = 0; c < 2; ++c) {
        for (const auto &iv : rec.logs[0][c].intervals)
            schedule.push_back({iv.timestamp, c, &iv});
    }
    std::sort(schedule.begin(), schedule.end(),
              [](const Slot &a, const Slot &b) { return a.ts < b.ts; });

    std::printf("\nrecorded interval schedule (the exact interleaving):\n");
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        rnr::LogStats s;
        rnr::CoreLog one;
        one.intervals.push_back(*schedule[i].iv);
        s.accumulate(one);
        std::printf("  %2zu: core %d  %4llu instructions%s\n", i,
                    schedule[i].core,
                    (unsigned long long)s.instructions(),
                    s.reordered() ? "  (contains reordered accesses)"
                                  : "");
    }

    // Replay twice: the lost-update outcome must reproduce exactly.
    for (int attempt = 1; attempt <= 2; ++attempt) {
        std::vector<rnr::CoreLog> patched;
        for (const auto &log : rec.logs[0])
            patched.push_back(rnr::patch(log));
        rnr::Replayer rep(program, std::move(patched), initial.clone());
        auto res = rep.run();
        const std::uint64_t replayed = res.memory.read64(kCounter);
        std::printf("replay #%d: counter = %llu (%s)\n", attempt,
                    (unsigned long long)replayed,
                    replayed == final_count ? "reproduced"
                                            : "MISMATCH");
        if (replayed != final_count)
            return 1;
    }
    return 0;
}
