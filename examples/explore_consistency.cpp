/**
 * @file
 * Observing relaxed-consistency reordering through the recorder. The
 * classic message-passing litmus test is run WITHOUT the release fence:
 * under RC the flag store can perform before the data store, so the
 * consumer can see flag==1 yet read stale data. The example shows
 *  - whether the relaxed outcome occurred in this recorded execution,
 *  - how RelaxReplay captured any cross-interval store as a
 *    ReorderedStore entry (with its interval offset),
 *  - that replay reproduces the relaxed outcome exactly, and
 *  - that adding the fence removes the relaxed outcome.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "machine/machine.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"

using namespace rr;

namespace
{

constexpr sim::Addr kFlag = 0x30000;
constexpr sim::Addr kData = 0x30040; // separate line

isa::Program
messagePassing(bool with_fence, int rounds)
{
    isa::Assembler a;
    // Thread 0: producer. Stores data then flag, per round. Without a
    // fence the two stores may perform out of order (different lines,
    // independent write-buffer misses).
    a.entry(0);
    a.li(3, kData);
    a.li(4, kFlag);
    a.li(5, 0); // round
    a.label("p_loop");
    a.addi(6, 5, 100);
    a.st(6, 3, 0); // data = round + 100
    if (with_fence)
        a.fence();
    a.addi(6, 5, 1);
    a.st(6, 4, 0); // flag = round + 1
    a.addi(5, 5, 1);
    a.li(7, rounds);
    a.blt(5, 7, "p_loop");
    a.halt();

    // Thread 1: consumer. Spins for each flag value and records the
    // data it observed into a result array.
    a.entry(1);
    a.li(3, kData);
    a.li(4, kFlag);
    a.li(8, 0x30400); // results
    a.li(5, 0);
    a.label("c_loop");
    a.addi(6, 5, 1);
    a.label("spin");
    a.ld(7, 4, 0);
    a.blt(7, 6, "spin"); // wait for flag >= round+1
    a.ld(7, 3, 0);       // read data
    a.slli(9, 5, 3);
    a.add(9, 9, 8);
    a.st(7, 9, 0); // results[round] = observed data
    a.addi(5, 5, 1);
    a.li(7, rounds);
    a.blt(5, 7, "c_loop");
    a.halt();
    return a.assemble();
}

int
runOnce(bool with_fence)
{
    const int rounds = 50;
    const isa::Program program = messagePassing(with_fence, rounds);

    sim::MachineConfig cfg;
    cfg.numCores = 2;
    std::vector<sim::RecorderConfig> policies(1);
    policies[0].mode = sim::RecorderMode::Base; // log every reorder

    machine::Machine m(cfg, program, policies);
    const mem::BackingStore initial = m.initialMemory();
    auto rec = m.run();

    // Count rounds where the consumer saw the flag but stale data.
    int stale = 0;
    for (int r = 0; r < rounds; ++r) {
        const std::uint64_t seen = m.memory().read64(0x30400 + r * 8);
        if (seen < static_cast<std::uint64_t>(r + 100))
            ++stale;
    }

    rnr::LogStats stats;
    for (const auto &log : rec.logs[0])
        stats.accumulate(log);
    std::printf("%-13s stale reads: %2d/%d   reordered entries in log: "
                "%llu (loads %llu, stores %llu)\n",
                with_fence ? "with fence:" : "without fence:", stale,
                rounds, (unsigned long long)stats.reordered(),
                (unsigned long long)stats.reorderedLoads,
                (unsigned long long)stats.reorderedStores);

    // Print the first few ReorderedStore entries with their offsets.
    int shown = 0;
    for (int c = 0; c < 2 && shown < 3; ++c) {
        for (const auto &iv : rec.logs[0][c].intervals) {
            for (const auto &e : iv.entries) {
                if (e.kind == rnr::EntryKind::ReorderedStore &&
                    shown < 3) {
                    std::printf("    core %d: ReorderedStore addr=0x%llx "
                                "value=%llu offset=%u (performed %u "
                                "interval(s) before counting)\n",
                                c, (unsigned long long)e.addr,
                                (unsigned long long)e.storeValue,
                                e.offset, e.offset);
                    ++shown;
                }
            }
        }
    }

    // Determinism: replay and compare the result array.
    std::vector<rnr::CoreLog> patched;
    for (const auto &log : rec.logs[0])
        patched.push_back(rnr::patch(log));
    rnr::Replayer rep(program, std::move(patched), initial.clone());
    auto res = rep.run();
    if (res.memory.fingerprint() != rec.memoryFingerprint) {
        std::printf("    REPLAY MISMATCH\n");
        return 1;
    }
    std::printf("    replay reproduced the execution exactly\n");
    return 0;
}

} // namespace

int
main()
{
    std::printf("message-passing litmus test on the RC machine "
                "(50 rounds):\n\n");
    const int rc1 = runOnce(false);
    const int rc2 = runOnce(true);
    return rc1 || rc2;
}
