/**
 * @file
 * Quickstart: record a two-threaded program with RelaxReplay_Opt,
 * inspect the log, patch it, and replay it deterministically.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "machine/machine.hh"
#include "rnr/patcher.hh"
#include "rnr/replayer.hh"

using namespace rr;

int
main()
{
    // ------------------------------------------------------------------
    // 1. Write a small two-threaded program in the micro-ISA. Thread 0
    //    publishes data then sets a flag; thread 1 spins on the flag and
    //    consumes the data (a classic message-passing race).
    // ------------------------------------------------------------------
    isa::Assembler a;
    const sim::Addr flag = 0x10000, data = 0x10020;

    a.entry(0);
    a.li(3, data);
    a.li(4, 12345);
    a.st(4, 3, 0); // data = 12345
    a.fence();     // release: data visible before flag
    a.li(3, flag);
    a.li(4, 1);
    a.st(4, 3, 0); // flag = 1
    a.halt();

    a.entry(1);
    a.li(3, flag);
    a.label("spin");
    a.ld(4, 3, 0);
    a.beq(4, 0, "spin"); // wait for the flag
    a.li(3, data);
    a.ld(5, 3, 0); // consume: must read 12345
    a.halt();

    // ------------------------------------------------------------------
    // 2. Record the execution on a 2-core RC machine with both
    //    RelaxReplay designs at once ("record once, log many").
    // ------------------------------------------------------------------
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    std::vector<sim::RecorderConfig> policies(2);
    policies[0].mode = sim::RecorderMode::Base;
    policies[1].mode = sim::RecorderMode::Opt;

    machine::Machine m(cfg, a.assemble(), policies);
    const mem::BackingStore initial = m.initialMemory();
    const isa::Program program = a.assemble();
    auto rec = m.run();

    std::printf("recorded %llu instructions in %llu cycles\n",
                (unsigned long long)rec.totalInstructions,
                (unsigned long long)rec.cycles);
    std::printf("thread 1 consumed r5 = %llu\n",
                (unsigned long long)rec.cores[1].finalRegs[5]);

    // ------------------------------------------------------------------
    // 3. Inspect the logs.
    // ------------------------------------------------------------------
    for (std::size_t p = 0; p < policies.size(); ++p) {
        rnr::LogStats stats;
        for (const auto &log : rec.logs[p])
            stats.accumulate(log);
        std::printf("%s log: %llu intervals, %llu InorderBlocks, "
                    "%llu reordered accesses, %llu bits\n",
                    sim::toString(policies[p].mode),
                    (unsigned long long)stats.intervals,
                    (unsigned long long)stats.inorderBlocks,
                    (unsigned long long)stats.reordered(),
                    (unsigned long long)stats.totalBits);
    }

    // ------------------------------------------------------------------
    // 4. Patch the Opt log and replay it. Replay is sequential and
    //    needs no simulator: InorderBlocks execute natively (here:
    //    through the functional interpreter), reordered loads inject
    //    their recorded values.
    // ------------------------------------------------------------------
    std::vector<rnr::CoreLog> patched;
    for (const auto &log : rec.logs[1])
        patched.push_back(rnr::patch(log));

    rnr::Replayer replayer(program, std::move(patched), initial.clone());
    auto replay = replayer.run();

    std::printf("replayed %llu instructions over %llu intervals\n",
                (unsigned long long)replay.instructions,
                (unsigned long long)replay.intervals);
    std::printf("replay thread 1 r5 = %llu\n",
                (unsigned long long)replay.contexts[1].regs[5]);

    const bool ok =
        replay.memory.fingerprint() == rec.memoryFingerprint &&
        replay.contexts[1].regs[5] == rec.cores[1].finalRegs[5];
    std::printf("deterministic replay: %s\n", ok ? "OK" : "MISMATCH");
    return ok ? 0 : 1;
}
