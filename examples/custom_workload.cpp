/**
 * @file
 * Building a custom workload with the KernelBuilder DSL and comparing
 * all four recorder configurations on it. The workload is a small
 * producer/consumer pipeline: producers push work items into a
 * lock-protected ring buffer, consumers pop and process them, with a
 * final barrier — a sharing pattern distinct from the bundled kernels.
 */

#include <cstdio>

#include "machine/machine.hh"
#include "rnr/log.hh"
#include "workloads/runtime.hh"

using namespace rr;
using workloads::KernelBuilder;

namespace
{

workloads::Workload
pipeline(std::uint32_t threads, std::uint64_t items_per_producer)
{
    workloads::WorkloadParams params;
    params.numThreads = threads;
    KernelBuilder k("pipeline", params);
    isa::Assembler &a = k.a();

    const std::uint64_t slots = 16;
    // A FIFO-fair ticket lock: with a plain test-and-set lock the
    // consumers' release/re-acquire loop convoys and starves the
    // producers (deterministically, in a simulator!).
    const sim::Addr lock = k.allocTicketLock("lock");
    const sim::Addr head = k.alloc("head", 1); // next free slot
    const sim::Addr tail = k.alloc("tail", 1); // next item to consume
    const sim::Addr ring = k.alloc("ring", slots);
    const sim::Addr done = k.alloc("done", threads * 4);

    // Even threads produce, odd threads consume.
    k.emitPreamble();
    k.loadImm(10, lock);
    k.loadImm(11, head);
    k.loadImm(12, tail);
    k.loadImm(13, ring);
    a.andi(3, 1, 1);
    a.bne(3, 0, "consumer");

    // --- producer: push items_per_producer items ---
    a.li(4, 0); // produced so far
    a.label("produce");
    k.ticketAcquire(10);
    a.ld(5, 11, 0); // head
    a.ld(6, 12, 0); // tail
    a.sub(7, 5, 6);
    a.li(8, static_cast<std::int64_t>(slots));
    a.bge(7, 8, "ring_full"); // full: retry
    // ring[head % slots] = tid*1000 + item
    a.andi(7, 5, static_cast<std::int64_t>(slots - 1));
    a.slli(7, 7, 3);
    a.add(7, 7, 13);
    a.li(8, 1000);
    a.mul(8, 1, 8);
    a.add(8, 8, 4);
    a.st(8, 7, 0);
    a.addi(5, 5, 1);
    a.st(5, 11, 0); // head++
    k.ticketRelease(10);
    a.addi(4, 4, 1);
    k.loadImm(8, items_per_producer);
    a.blt(4, 8, "produce");
    a.jmp("finish");
    a.label("ring_full");
    k.ticketRelease(10);
    k.pause(); // let a consumer in (hammering would starve remote cores)
    a.jmp("produce");

    // --- consumer: pop until its share is consumed ---
    a.label("consumer");
    a.li(4, 0); // consumed so far
    a.li(9, 0); // checksum
    a.label("consume");
    k.ticketAcquire(10);
    a.ld(5, 11, 0); // head
    a.ld(6, 12, 0); // tail
    a.bge(6, 5, "ring_empty"); // empty: retry
    a.andi(7, 6, static_cast<std::int64_t>(slots - 1));
    a.slli(7, 7, 3);
    a.add(7, 7, 13);
    a.ld(8, 7, 0); // item
    a.addi(6, 6, 1);
    a.st(6, 12, 0); // tail++
    k.ticketRelease(10);
    a.xor_(9, 9, 8);
    a.addi(4, 4, 1);
    k.loadImm(8, items_per_producer);
    a.blt(4, 8, "consume");
    a.jmp("finish");
    a.label("ring_empty");
    k.ticketRelease(10);
    k.pause(); // let a producer in
    a.jmp("consume");

    // --- join ---
    a.label("finish");
    a.slli(7, 1, 5);
    k.loadImm(8, done);
    a.add(7, 7, 8);
    a.st(9, 7, 0); // publish checksum (producers publish 0)
    k.barrier();
    a.halt();
    return k.finish();
}

} // namespace

int
main()
{
    const std::uint32_t threads = 4; // 2 producers + 2 consumers
    auto w = pipeline(threads, 64);
    std::printf("custom workload '%s': %zu instructions of code\n",
                w.name.c_str(), (size_t)w.program.size());

    sim::MachineConfig cfg;
    cfg.numCores = threads;
    std::vector<sim::RecorderConfig> policies(4);
    policies[0] = {sim::RecorderMode::Base, 4096};
    policies[1] = {sim::RecorderMode::Base, 0};
    policies[2] = {sim::RecorderMode::Opt, 4096};
    policies[3] = {sim::RecorderMode::Opt, 0};
    const char *names[] = {"Base-4K", "Base-INF", "Opt-4K", "Opt-INF"};

    machine::Machine m(cfg, w.program, policies);
    auto rec = m.run();

    std::printf("recorded %llu instructions in %llu cycles "
                "(IPC %.2f per core)\n",
                (unsigned long long)rec.totalInstructions,
                (unsigned long long)rec.cycles,
                (double)rec.totalInstructions / rec.cycles / threads);

    std::printf("\n%-10s %10s %10s %12s %12s\n", "config", "intervals",
                "reordered", "log bits", "bits/kinst");
    for (int p = 0; p < 4; ++p) {
        rnr::LogStats s;
        for (const auto &log : rec.logs[p])
            s.accumulate(log);
        std::printf("%-10s %10llu %10llu %12llu %12.1f\n", names[p],
                    (unsigned long long)s.intervals,
                    (unsigned long long)s.reordered(),
                    (unsigned long long)s.totalBits,
                    1000.0 * s.totalBits / rec.totalInstructions);
    }

    // Sanity: the XOR of everything produced equals the XOR of the
    // consumers' checksums — every item was consumed exactly once.
    std::uint64_t produced_xor = 0;
    for (std::uint64_t t = 0; t < threads; t += 2) {
        for (std::uint64_t i = 0; i < 64; ++i)
            produced_xor ^= t * 1000 + i;
    }
    std::uint64_t consumed_xor = 0;
    const sim::Addr done = w.regions.at("done");
    for (std::uint64_t t = 1; t < threads; t += 2)
        consumed_xor ^= m.memory().read64(done + t * 32);
    std::printf("\npipeline integrity: %s\n",
                produced_xor == consumed_xor ? "OK" : "MISMATCH");
    return produced_xor == consumed_xor ? 0 : 1;
}
